"""Operation vocabulary for simulated processes.

A simulated process is a Python generator that *yields* operations and
receives their results back through ``send``.  The same operation objects
are interpreted by three different executors:

* :class:`repro.sim.engine.Engine` — the discrete-event timing simulator,
  which charges each shared-memory operation a duration drawn from a
  :class:`repro.sim.timing.TimingModel`;
* :class:`repro.verify.explorer.Explorer` — the model checker, which
  explores interleavings of shared-memory operations under fully
  asynchronous semantics (``Delay`` provides no guarantee there, which is
  exactly the paper's notion of a timing failure);
* :class:`repro.runtime.executor.ThreadedExecutor` — a real-thread backend.

Only :class:`Read` and :class:`Write` touch shared memory and are therefore
"steps" in the sense of the paper's timing assumption (there is a known
upper bound ``Δ`` on the time any single such step may take).  ``Delay`` is
the paper's explicit ``delay(d)`` statement.  ``LocalWork`` consumes
simulated time without touching shared memory (used to model critical
sections and think times).  ``Label`` is a zero-duration annotation recorded
in the trace, used by the specification checkers (e.g. critical-section
entry and exit marks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .registers import Register


__all__ = [
    "Op",
    "Read",
    "Write",
    "ReadModifyWrite",
    "compare_and_swap",
    "fetch_and_add",
    "get_and_set",
    "Delay",
    "LocalWork",
    "Label",
    "Send",
    "Broadcast",
    "Recv",
    "ENTRY_START",
    "CS_ENTER",
    "CS_EXIT",
    "EXIT_DONE",
    "DECIDED",
    "read",
    "write",
    "delay",
    "local_work",
    "label",
    "send",
    "broadcast",
    "recv",
]


class Op:
    """Base class for everything a simulated process may yield."""

    __slots__ = ()

    @property
    def is_shared(self) -> bool:
        """True when the operation accesses shared memory (a "step")."""
        return False

    @property
    def is_message(self) -> bool:
        """True when the operation touches the message substrate.

        Message operations are the networked analogue of shared steps:
        the per-link delivery bound plays the role the paper's ``Δ``
        plays for shared-memory steps (see :mod:`repro.net`).  Only the
        network-aware engine (:class:`repro.net.NetEngine`) interprets
        them; the plain :class:`~repro.sim.engine.Engine` rejects them.
        """
        return False


@dataclass(frozen=True)
class Read(Op):
    """Atomically read a shared register; the register's value is sent back."""

    register: "Register"

    __slots__ = ("register",)

    @property
    def is_shared(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Read({self.register.name!r})"


@dataclass(frozen=True)
class Write(Op):
    """Atomically write ``value`` to a shared register."""

    register: "Register"
    value: Any

    __slots__ = ("register", "value")

    @property
    def is_shared(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Write({self.register.name!r}, {self.value!r})"


@dataclass(frozen=True)
class ReadModifyWrite(Op):
    """An atomic read-modify-write on one register (paper §4 extension).

    The paper's algorithms use reads and writes only; its Discussion
    section lists "synchronization primitives other than atomic registers"
    as an extension.  This op applies ``transform(old) -> (new, result)``
    atomically at the linearization point; the process receives
    ``result``.  ``transform`` must be pure (it may run more than once in
    replay-based exploration).

    Use the helpers :func:`compare_and_swap`, :func:`fetch_and_add` and
    :func:`get_and_set` for the classic primitives; ``name`` identifies
    the primitive in traces.
    """

    register: "Register"
    transform: "Callable[[Any], tuple]"
    name: str = "rmw"

    @property
    def is_shared(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ReadModifyWrite({self.register.name!r}, {self.name})"


def compare_and_swap(register: "Register", expected: Any, new: Any) -> ReadModifyWrite:
    """CAS: if the register holds ``expected``, store ``new``.

    The process receives ``True`` on success, ``False`` otherwise.
    """

    def transform(old: Any) -> tuple:
        if old == expected:
            return new, True
        return old, False

    return ReadModifyWrite(register, transform, name="cas")


def fetch_and_add(register: "Register", amount: Any = 1) -> ReadModifyWrite:
    """Atomically add ``amount``; the process receives the old value."""

    def transform(old: Any) -> tuple:
        return old + amount, old

    return ReadModifyWrite(register, transform, name="faa")


def get_and_set(register: "Register", new: Any) -> ReadModifyWrite:
    """Atomically store ``new``; the process receives the old value."""

    def transform(old: Any) -> tuple:
        return new, old

    return ReadModifyWrite(register, transform, name="gas")


@dataclass(frozen=True)
class Delay(Op):
    """The paper's explicit ``delay(d)`` statement.

    Under the timing-based semantics the process is suspended for *at
    least* ``duration`` time units (the engine charges exactly
    ``duration``, matching the paper's accounting convention).  Under
    fully asynchronous semantics — i.e. during timing failures — a delay
    provides no synchronization guarantee whatsoever, which is how the
    model checker treats it.
    """

    duration: float

    __slots__ = ("duration",)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"delay duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class LocalWork(Op):
    """Local computation consuming ``duration`` time units.

    Does not touch shared memory; used to model the critical section body
    and the remainder (non-critical) section of long-lived workloads.
    """

    duration: float

    __slots__ = ("duration",)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"local work duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class Label(Op):
    """A zero-duration trace annotation.

    The specification checkers recognise the well-known kinds below
    (``ENTRY_START``, ``CS_ENTER``, ...); arbitrary kinds may be used for
    ad-hoc instrumentation.  ``payload`` travels with the trace event.
    """

    # No __slots__ here: dataclass fields with defaults store a class
    # attribute, which conflicts with same-named slots on Python < 3.10's
    # dataclass (no ``slots=True``); Labels are rare enough not to matter.
    kind: str
    payload: Optional[Hashable] = None


@dataclass(frozen=True)
class Send(Op):
    """Hand one message to the network, addressed to process ``dest``.

    The message is *in flight* from the operation's completion instant
    (its linearization point); the transport then assigns a delivery
    time within the link's delivery bound — or beyond it during a delay
    spike (the networked timing failure), or never (loss, partitions).
    The sender learns nothing about the outcome: ``None`` is sent back.
    """

    dest: int
    payload: Any

    __slots__ = ("dest", "payload")

    @property
    def is_message(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Send(to={self.dest}, {self.payload!r})"


@dataclass(frozen=True)
class Broadcast(Op):
    """Hand one message per destination to the network.

    ``dests=None`` addresses every other process on the transport.  One
    broadcast linearizes as a single operation, but each copy travels
    (and may be dropped or delayed) independently — there is no
    reliable-broadcast guarantee, matching the crash-prone model.
    """

    payload: Any
    dests: Optional[Tuple[int, ...]] = None

    # No __slots__: a defaulted dataclass field stores a class attribute,
    # which conflicts with same-named slots before Python 3.10 (same
    # trade-off as Label above).

    @property
    def is_message(self) -> bool:
        return True

    def __repr__(self) -> str:
        to = "all" if self.dests is None else f"{list(self.dests)}"
        return f"Broadcast(to={to}, {self.payload!r})"


@dataclass(frozen=True)
class Recv(Op):
    """Collect every message delivered to this process so far.

    The process receives a list of ``(sender, payload)`` pairs, ordered
    by delivery time (ties by transport sequence).  Non-blocking: the
    list is empty when nothing has arrived — receivers poll, exactly
    like the register-backed mailboxes in :mod:`repro.mp.channels`.
    """

    __slots__ = ()

    @property
    def is_message(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "Recv()"


# Well-known label kinds used by the mutual-exclusion and consensus
# specification checkers.
ENTRY_START = "entry_start"
CS_ENTER = "cs_enter"
CS_EXIT = "cs_exit"
EXIT_DONE = "exit_done"
DECIDED = "decided"


def read(register: "Register") -> Read:
    """Convenience constructor: ``value = yield read(reg)``."""
    return Read(register)


def write(register: "Register", value: Any) -> Write:
    """Convenience constructor: ``yield write(reg, v)``."""
    return Write(register, value)


def delay(duration: float) -> Delay:
    """Convenience constructor for the paper's ``delay(d)`` statement."""
    return Delay(duration)


def local_work(duration: float) -> LocalWork:
    """Convenience constructor for local (non-shared) computation."""
    return LocalWork(duration)


def label(kind: str, payload: Optional[Hashable] = None) -> Label:
    """Convenience constructor for trace annotations."""
    return Label(kind, payload)


def send(dest: int, payload: Any) -> Send:
    """Convenience constructor: ``yield send(pid, msg)``."""
    return Send(dest, payload)


def broadcast(payload: Any, dests: Optional[Iterable[int]] = None) -> Broadcast:
    """Convenience constructor: ``yield broadcast(msg)`` (to everyone else)."""
    return Broadcast(payload, None if dests is None else tuple(dests))


def recv() -> Recv:
    """Convenience constructor: ``msgs = yield recv()``."""
    return Recv()
