"""Deterministic execution counters for the engine (perf instrumentation).

Wall-clock time on shared CI runners is too noisy to gate regressions on,
so the benchmark harness (:mod:`repro.bench`) tracks *simulator-native
work counters* instead: events popped off the engine's heap, heap pushes,
operations linearized, shared steps, register reads/writes, registers
touched.  Given the same programs, timing model (with its seed), tie
break and crash schedule, these counters are bit-for-bit reproducible on
any machine — a change in them means the simulation itself did different
work, which is exactly the drift a perf gate must catch.

Instrumentation is **off by default and costs nothing when off**: an
:class:`Engine` holds ``_probe = None`` unless a probe was passed
explicitly or a :func:`probe_scope` is active when the engine is built,
and the hot loop guards every increment behind a single cached
``probe is not None`` check.

Two ways to attach a probe::

    probe = EngineProbe()
    Engine(delta=1.0, timing=..., probe=probe)          # explicit

    with probe_scope(probe):                            # ambient
        run_e5()    # every Engine built inside the scope reports here

The ambient form is what :mod:`repro.bench` uses to instrument the
experiment drivers without threading a probe through their signatures.
The simulator is single-threaded; the ambient scope is process-global and
not thread-safe, like the rest of the simulator.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["EngineProbe", "active_probe", "probe_scope"]


class EngineProbe:
    """Accumulates deterministic work counters across one or more runs.

    All fields are plain integers; :meth:`snapshot` returns them as a
    dict in a fixed key order so serialized counter blocks are stable.
    """

    __slots__ = (
        "runs",
        "events",
        "heap_pushes",
        "ops_linearized",
        "shared_steps",
        "trace_events",
        "reads",
        "writes",
        "rmws",
        "registers_touched",
        "messages_sent",
        "messages_delivered",
        "messages_dropped",
        "quorum_rtts",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.runs = 0  # completed Engine.run() calls
        self.events = 0  # events popped off the heap
        self.heap_pushes = 0  # events scheduled (incl. pre-scheduled faults)
        self.ops_linearized = 0  # operation effects applied (completions)
        self.shared_steps = 0  # reads/writes/rmws among those
        self.trace_events = 0  # trace records emitted
        self.reads = 0  # register reads (from Memory)
        self.writes = 0  # register writes (from Memory)
        self.rmws = 0  # read-modify-writes (from Memory)
        self.registers_touched = 0  # distinct registers, summed over runs
        self.messages_sent = 0  # messages handed to a net transport
        self.messages_delivered = 0  # messages collected by a Recv
        self.messages_dropped = 0  # messages lost to faults (loss/partition)
        self.quorum_rtts = 0  # completed quorum phases (repro.net.quorum)

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict, in declaration order."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"EngineProbe(runs={self.runs}, events={self.events}, "
            f"shared_steps={self.shared_steps})"
        )


_ACTIVE: Optional[EngineProbe] = None


def active_probe() -> Optional[EngineProbe]:
    """The probe engines should attach to, or None (the default)."""
    return _ACTIVE


@contextmanager
def probe_scope(probe: EngineProbe) -> Iterator[EngineProbe]:
    """Make ``probe`` ambient: every Engine built inside attaches to it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = probe
    try:
        yield probe
    finally:
        _ACTIVE = previous
