"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FifoTieBreak,
    PidOrderTieBreak,
    ProcessState,
    Register,
    RunStatus,
    SimulationError,
    delay,
    label,
    local_work,
    read,
    write,
)

X = Register("x", 0)


def writer(pid, value):
    yield write(X, value)
    return value


def reader(pid):
    v = yield read(X)
    return v


def test_single_process_runs_to_completion():
    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(writer(0, 7))
    res = eng.run()
    assert res.status is RunStatus.COMPLETED
    assert res.returns == {0: 7}
    assert res.end_time == 0.5


def test_memory_effect_at_completion_time():
    """A write linearizes at its completion, not its issue."""

    def slow_writer():
        yield write(X, 1)

    def fast_reader():
        v = yield read(X)
        return v

    eng = Engine(delta=10.0, timing=ConstantTiming(1.0))
    # Both ops issued at 0; both complete at 1.0; tie-break decides order.
    eng.spawn(slow_writer(), pid=0)
    eng.spawn(fast_reader(), pid=1)
    res = eng.run()
    # FIFO tie-break: pid 0 spawned first, so its write linearizes first.
    assert res.returns[1] == 1


def test_pid_order_tie_break_reverses_linearization():
    def w():
        yield write(X, 1)

    def r():
        v = yield read(X)
        return v

    eng = Engine(delta=10.0, timing=ConstantTiming(1.0), tie_break=PidOrderTieBreak([1, 0]))
    eng.spawn(w(), pid=0)
    eng.spawn(r(), pid=1)
    res = eng.run()
    assert res.returns[1] == 0  # the read went first


def test_delay_takes_exactly_requested():
    def prog():
        yield delay(3.0)

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(prog())
    res = eng.run()
    assert res.end_time == 3.0


def test_local_work_consumes_time():
    def prog():
        yield local_work(2.5)

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(prog())
    assert eng.run().end_time == 2.5


def test_labels_are_zero_duration():
    def prog():
        yield label("a")
        yield label("b")
        yield write(X, 1)

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(prog())
    res = eng.run()
    labels = [e for e in res.trace if e.kind == "label"]
    assert [e.label for e in labels] == ["a", "b"]
    assert all(e.duration == 0 for e in labels)


def test_max_time_stops_run():
    def spinner():
        while True:
            yield read(X)

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5), max_time=10.0)
    eng.spawn(spinner())
    res = eng.run()
    assert res.status is RunStatus.TIME_LIMIT
    assert res.end_time <= 10.0
    assert res.live_pids == [0]


def test_max_total_steps_stops_run():
    def spinner():
        while True:
            yield read(X)

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5), max_total_steps=25)
    eng.spawn(spinner())
    res = eng.run()
    assert res.status is RunStatus.STEP_LIMIT
    assert res.trace.shared_step_count() == 25


def test_crash_after_steps():
    def prog():
        yield write(X, 1)
        yield write(X, 2)
        yield write(X, 3)

    eng = Engine(
        delta=1.0,
        timing=ConstantTiming(0.5),
        crashes=CrashSchedule(after_steps={0: 2}),
    )
    eng.spawn(prog())
    res = eng.run()
    assert res.crashed_pids == [0]
    assert res.memory.peek(X) == 2  # the second write landed, the third did not


def test_crash_after_zero_steps_takes_no_step():
    def prog():
        yield write(X, 1)

    eng = Engine(
        delta=1.0, timing=ConstantTiming(0.5), crashes=CrashSchedule(after_steps={0: 0})
    )
    eng.spawn(prog())
    res = eng.run()
    assert res.crashed_pids == [0]
    assert res.memory.peek(X) == 0


def test_crash_at_time_discards_inflight_write():
    """An op whose linearization would fall at/after the crash is lost."""

    def prog():
        yield write(X, 1)  # completes at 2.0 > crash at 1.0

    eng = Engine(
        delta=5.0, timing=ConstantTiming(2.0), crashes=CrashSchedule(at_time={0: 1.0})
    )
    eng.spawn(prog())
    res = eng.run()
    assert res.crashed_pids == [0]
    assert res.memory.peek(X) == 0


def test_crash_at_time_after_completion_keeps_effect():
    def prog():
        yield write(X, 1)  # completes at 0.5 < crash at 1.0
        yield delay(10.0)

    eng = Engine(
        delta=5.0, timing=ConstantTiming(0.5), crashes=CrashSchedule(at_time={0: 1.0})
    )
    eng.spawn(prog())
    res = eng.run()
    assert res.crashed_pids == [0]
    assert res.memory.peek(X) == 1


def test_exceeded_delta_marked_in_trace():
    eng = Engine(delta=0.4, timing=ConstantTiming(0.5))
    eng.spawn(writer(0, 1))
    res = eng.run()
    assert len(res.trace.timing_failures()) == 1


def test_within_delta_not_marked():
    eng = Engine(delta=0.5, timing=ConstantTiming(0.5))
    eng.spawn(writer(0, 1))
    res = eng.run()
    assert res.trace.timing_failures() == []


def test_program_exception_wrapped():
    def bad():
        yield read(X)
        raise RuntimeError("boom")

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(bad())
    with pytest.raises(SimulationError, match="boom"):
        eng.run()


def test_yielding_non_op_rejected():
    def bad():
        yield 42

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(bad())
    with pytest.raises(SimulationError, match="non-operation"):
        eng.run()


def test_spawn_after_run_rejected():
    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(writer(0, 1))
    eng.run()
    with pytest.raises(RuntimeError):
        eng.spawn(writer(1, 2), pid=1)


def test_run_twice_rejected():
    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(writer(0, 1))
    eng.run()
    with pytest.raises(RuntimeError):
        eng.run()


def test_duplicate_pid_rejected():
    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(writer(0, 1), pid=0)
    with pytest.raises(ValueError):
        eng.spawn(writer(0, 2), pid=0)


def test_start_time_staggers_processes():
    def prog():
        v = yield read(X)
        return v

    def w():
        yield write(X, 9)

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(w(), pid=0)
    eng.spawn(prog(), pid=1, start_time=5.0)
    res = eng.run()
    assert res.returns[1] == 9  # started long after the write


def test_determinism_same_seeds_same_trace():
    from repro.sim import RandomTieBreak, UniformTiming

    def build():
        eng = Engine(
            delta=1.0,
            timing=UniformTiming(0.1, 0.9, seed=5),
            tie_break=RandomTieBreak(seed=6),
        )
        for pid in range(3):
            eng.spawn(writer(pid, pid), pid=pid)
        return eng.run()

    t1 = [(e.pid, e.kind, e.completed) for e in build().trace]
    t2 = [(e.pid, e.kind, e.completed) for e in build().trace]
    assert t1 == t2


def test_process_states_reported():
    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    p = eng.spawn(writer(0, 1))
    eng.run()
    assert p.state is ProcessState.DONE
    assert p.shared_steps == 1
    assert p.finished_at == 0.5
