"""Unit tests for targeted adversary hooks."""

from repro.sim.adversary import (
    compose_hooks,
    slow_after,
    stall_read_of,
    stall_step_index,
    stall_write_to,
)
from repro.sim.ops import Read, Write
from repro.sim.registers import Register
from repro.sim.timing import StepContext

import pytest


def write_ctx(name, pid=0, now=0.0, step_index=0):
    return StepContext(pid=pid, op=Write(Register(name), 1), now=now, step_index=step_index)


def read_ctx(name, pid=0, now=0.0, step_index=0):
    return StepContext(pid=pid, op=Read(Register(name)), now=now, step_index=step_index)


class TestStallWriteTo:
    def test_exact_name_match(self):
        hook = stall_write_to("x", 9.0)
        assert hook(write_ctx("x"), 0.5) == 9.0
        assert hook(write_ctx("y"), 0.5) is None

    def test_prefix_tuple_matches_array_cells(self):
        hook = stall_write_to(("ns", "y"), 9.0)
        ctx = StepContext(0, Write(Register(("ns", "y", 3)), 1), 0.0, 0)
        assert hook(ctx, 0.5) == 9.0

    def test_predicate_target(self):
        hook = stall_write_to(lambda name: name == "z", 9.0)
        assert hook(write_ctx("z"), 0.5) == 9.0

    def test_reads_unaffected(self):
        hook = stall_write_to("x", 9.0)
        assert hook(read_ctx("x"), 0.5) is None

    def test_count_limits_stalls(self):
        hook = stall_write_to("x", 9.0, count=2)
        assert hook(write_ctx("x"), 0.5) == 9.0
        assert hook(write_ctx("x"), 0.5) == 9.0
        assert hook(write_ctx("x"), 0.5) is None

    def test_count_none_unlimited(self):
        hook = stall_write_to("x", 9.0, count=None)
        for _ in range(10):
            assert hook(write_ctx("x"), 0.5) == 9.0

    def test_pid_filter(self):
        hook = stall_write_to("x", 9.0, pids=[1])
        assert hook(write_ctx("x", pid=0), 0.5) is None
        assert hook(write_ctx("x", pid=1), 0.5) == 9.0

    def test_never_shortens(self):
        hook = stall_write_to("x", 0.1)
        assert hook(write_ctx("x"), 0.5) == 0.5


class TestStallReadOf:
    def test_matches_reads_only(self):
        hook = stall_read_of("x", 9.0)
        assert hook(read_ctx("x"), 0.5) == 9.0
        assert hook(write_ctx("x"), 0.5) is None


class TestStallStepIndex:
    def test_exact_step(self):
        hook = stall_step_index(pid=1, step_index=3, duration=9.0)
        assert hook(read_ctx("x", pid=1, step_index=3), 0.5) == 9.0
        assert hook(read_ctx("x", pid=1, step_index=2), 0.5) is None
        assert hook(read_ctx("x", pid=0, step_index=3), 0.5) is None


class TestSlowAfter:
    def test_slows_from_start_time(self):
        hook = slow_after([0], start=5.0, factor=3.0)
        assert hook(read_ctx("x", pid=0, now=4.9), 0.5) is None
        assert hook(read_ctx("x", pid=0, now=5.0), 0.5) == 1.5

    def test_other_pids_unaffected(self):
        hook = slow_after([0], start=0.0, factor=3.0)
        assert hook(read_ctx("x", pid=1, now=1.0), 0.5) is None

    def test_rejects_shrinking_factor(self):
        with pytest.raises(ValueError):
            slow_after([0], start=0.0, factor=0.5)


class TestCompose:
    def test_first_override_wins(self):
        h1 = stall_write_to("x", 9.0)
        h2 = stall_write_to("x", 99.0, count=None)
        hook = compose_hooks(h1, h2)
        assert hook(write_ctx("x"), 0.5) == 9.0
        # h1 exhausted (count=1), h2 takes over
        assert hook(write_ctx("x"), 0.5) == 99.0

    def test_all_none_keeps_nominal(self):
        hook = compose_hooks(stall_write_to("a", 9.0), stall_write_to("b", 9.0))
        assert hook(write_ctx("c"), 0.5) is None


class TestEndToEndFischerViolation:
    """The adversary that actually breaks Fischer (E13's core scenario)."""

    def test_stalled_write_breaks_mutual_exclusion(self):
        from repro.algorithms import FischerLock, mutex_session
        from repro.sim import ConstantTiming, Engine, HookTiming
        from repro.spec import check_mutual_exclusion

        lock = FischerLock(delta=1.0)
        # Stall p0's write to x long enough that p1 completes its doorway
        # and enters the CS first; p0's late write then survives p0's
        # delay-and-check, letting p0 in while p1 is still inside.
        hook = stall_write_to(lock.x.name, duration=3.0, pids=[0], count=1)
        engine = Engine(delta=1.0, timing=HookTiming(ConstantTiming(0.4), hook))
        for pid in range(2):
            engine.spawn(
                mutex_session(lock, pid, sessions=1, cs_duration=4.0), pid=pid
            )
        result = engine.run()
        overlaps = check_mutual_exclusion(result.trace)
        assert overlaps, "the targeted stall must break Fischer's exclusion"
