"""Unit tests for failure descriptions."""

import math

import pytest

from repro.sim.failures import (
    CrashSchedule,
    TimingFailureWindow,
    failure_window,
    merge_windows,
)


class TestTimingFailureWindow:
    def test_affects_time_range(self):
        w = failure_window(1.0, 2.0)
        assert not w.affects(0, 0.99)
        assert w.affects(0, 1.0)
        assert w.affects(0, 1.99)
        assert not w.affects(0, 2.0)  # end-exclusive

    def test_affects_pid_filter(self):
        w = failure_window(0.0, 10.0, pids=[1, 2])
        assert w.affects(1, 5.0)
        assert not w.affects(3, 5.0)

    def test_apply_duration(self):
        w = failure_window(0.0, 1.0, duration=5.0)
        assert w.apply(0.5) == 5.0
        assert w.apply(7.0) == 7.0  # never shortens

    def test_apply_stretch(self):
        w = failure_window(0.0, 1.0, stretch=3.0)
        assert w.apply(0.5) == 1.5

    def test_violates_delta(self):
        w = failure_window(0.0, 1.0, duration=5.0)
        assert w.violates_delta(delta=1.0, nominal=0.5)
        assert not w.violates_delta(delta=10.0, nominal=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingFailureWindow(2.0, 1.0)
        with pytest.raises(ValueError):
            TimingFailureWindow(0.0, 1.0, stretch=0.5)
        with pytest.raises(ValueError):
            TimingFailureWindow(0.0, 1.0, duration=0.0)


class TestMergeWindows:
    def test_disjoint(self):
        spans = merge_windows([failure_window(0, 1), failure_window(2, 3)])
        assert spans == [(0, 1), (2, 3)]

    def test_overlapping_merged(self):
        spans = merge_windows([failure_window(0, 2), failure_window(1, 3)])
        assert spans == [(0, 3)]

    def test_touching_merged(self):
        spans = merge_windows([failure_window(0, 1), failure_window(1, 2)])
        assert spans == [(0, 2)]

    def test_empty(self):
        assert merge_windows([]) == []


class TestCrashSchedule:
    def test_defaults_to_no_crashes(self):
        cs = CrashSchedule.none()
        assert cs.crash_time(0) == math.inf
        assert cs.crash_step(0) == math.inf
        assert not cs.crashes(0)

    def test_at_time(self):
        cs = CrashSchedule(at_time={1: 5.0})
        assert cs.crash_time(1) == 5.0
        assert cs.crashes(1)

    def test_after_steps(self):
        cs = CrashSchedule(after_steps={2: 3})
        assert cs.crash_step(2) == 3

    def test_crash_all_but(self):
        cs = CrashSchedule.crash_all_but(survivor=1, pids=range(4), after_steps=2)
        assert not cs.crashes(1)
        assert all(cs.crash_step(p) == 2 for p in (0, 2, 3))

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashSchedule(at_time={0: -1.0})
        with pytest.raises(ValueError):
            CrashSchedule(after_steps={0: -1})


class TestMergeWindowsDegenerate:
    def test_zero_length_window_dropped(self):
        # start == end affects no step (start <= t < end is empty).
        assert merge_windows([failure_window(1.0, 1.0)]) == []

    def test_zero_length_window_does_not_bridge(self):
        spans = merge_windows([
            failure_window(0.0, 1.0),
            failure_window(1.5, 1.5),  # degenerate, must not appear
            failure_window(2.0, 3.0),
        ])
        assert spans == [(0.0, 1.0), (2.0, 3.0)]

    def test_zero_length_inside_span_is_absorbed_silently(self):
        spans = merge_windows([
            failure_window(0.0, 2.0),
            failure_window(1.0, 1.0),
        ])
        assert spans == [(0.0, 2.0)]

    def test_abutting_same_pid_windows_coalesce(self):
        spans = merge_windows([
            failure_window(0.0, 1.0, pids=[0]),
            failure_window(1.0, 2.0, pids=[0]),
            failure_window(2.0, 2.5, pids=[0]),
        ])
        assert spans == [(0.0, 2.5)]


class TestCrashScheduleValidation:
    def test_nan_crash_time_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule(at_time={0: float("nan")})

    def test_nan_crash_steps_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule(after_steps={0: float("nan")})

    def test_negative_still_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule(at_time={3: -0.5})
        with pytest.raises(ValueError):
            CrashSchedule(after_steps={3: -1})

    def test_zero_is_valid(self):
        cs = CrashSchedule(at_time={0: 0.0}, after_steps={1: 0})
        assert cs.crashes(0) and cs.crashes(1)
