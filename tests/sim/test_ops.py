"""Unit tests for the operation vocabulary."""

import pytest

from repro.sim import ops
from repro.sim.registers import Register


def test_read_is_shared():
    r = Register("r")
    assert ops.read(r).is_shared
    assert ops.Read(r).register is r


def test_write_is_shared():
    r = Register("r")
    op = ops.write(r, 7)
    assert op.is_shared
    assert op.value == 7


def test_delay_not_shared():
    assert not ops.delay(1.0).is_shared


def test_local_work_not_shared():
    assert not ops.local_work(2.0).is_shared


def test_label_not_shared():
    assert not ops.label("x").is_shared


def test_delay_rejects_negative():
    with pytest.raises(ValueError):
        ops.delay(-0.1)


def test_local_work_rejects_negative():
    with pytest.raises(ValueError):
        ops.local_work(-1)


def test_delay_zero_allowed():
    assert ops.delay(0.0).duration == 0.0


def test_label_payload_default_none():
    lbl = ops.label(ops.DECIDED)
    assert lbl.kind == ops.DECIDED
    assert lbl.payload is None


def test_label_payload_carried():
    lbl = ops.label(ops.DECIDED, 42)
    assert lbl.payload == 42


def test_well_known_label_kinds_distinct():
    kinds = {ops.ENTRY_START, ops.CS_ENTER, ops.CS_EXIT, ops.EXIT_DONE, ops.DECIDED}
    assert len(kinds) == 5


def test_read_repr_mentions_register():
    r = Register("counter")
    assert "counter" in repr(ops.read(r))


def test_write_repr_mentions_value():
    r = Register("counter")
    assert "99" in repr(ops.write(r, 99))
