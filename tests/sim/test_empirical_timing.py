"""Tests for EmpiricalTiming (measured-host durations in the simulator)."""

import pytest

from repro.core.consensus import run_consensus
from repro.runtime import measure_host_delta
from repro.sim import ConstantTiming, EmpiricalTiming
from repro.sim.ops import Read
from repro.sim.registers import Register
from repro.sim.timing import StepContext


def ctx(pid=0):
    return StepContext(pid=pid, op=Read(Register("r")), now=0.0, step_index=0)


class TestCalibration:
    def test_quantile_maps_to_target(self):
        # 100 samples 1..100; p99 anchor = 100 -> scale 1/100.
        samples = [float(i) for i in range(1, 101)]
        t = EmpiricalTiming(samples, calibrated_to=1.0, calibrate_quantile=0.99)
        draws = [t.shared_step_duration(ctx()) for _ in range(500)]
        assert max(draws) <= 1.0 + 1e-9
        assert min(draws) >= 0.01 - 1e-9

    def test_values_above_anchor_exceed_target(self):
        """Samples past the calibration quantile become timing failures."""
        samples = [1.0] * 98 + [10.0, 100.0]
        t = EmpiricalTiming(samples, calibrated_to=1.0, calibrate_quantile=0.5,
                            seed=3)
        draws = [t.shared_step_duration(ctx()) for _ in range(2000)]
        assert any(d > 1.0 for d in draws)

    def test_deterministic_per_seed(self):
        samples = [0.5, 1.0, 2.0]
        a = EmpiricalTiming(samples, seed=7)
        b = EmpiricalTiming(samples, seed=7)
        assert [a.shared_step_duration(ctx()) for _ in range(20)] == [
            b.shared_step_duration(ctx()) for _ in range(20)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalTiming([])
        with pytest.raises(ValueError):
            EmpiricalTiming([0.0, -1.0])
        with pytest.raises(ValueError):
            EmpiricalTiming([1.0], calibrate_quantile=0.0)
        with pytest.raises(ValueError):
            EmpiricalTiming([1.0], calibrated_to=0.0)

    def test_nonpositive_samples_filtered(self):
        t = EmpiricalTiming([0.0, 1.0, -1.0])
        assert t.shared_step_duration(ctx()) > 0


class TestBridgeFromRuntime:
    def test_consensus_safe_on_measured_host_texture(self):
        """Measure the real host's step gaps, replay them in the simulator,
        and check Algorithm 1 against the machine's own timing texture
        (anything past the p99 is a realistic timing failure)."""
        report_gaps = measure_host_delta(threads=3, steps_per_thread=400)
        # Rebuild a sample list from the summary's spread (the report does
        # not retain raw gaps; approximate with its quantile envelope).
        samples = [report_gaps.p50] * 50 + [report_gaps.p99] * 2 + [
            report_gaps.maximum
        ]
        timing = EmpiricalTiming(samples, calibrated_to=1.0,
                                 calibrate_quantile=0.99, seed=1)
        result = run_consensus([0, 1, 1], delta=1.0, timing=timing,
                               max_time=10_000.0)
        assert result.verdict.safe
        if result.run.status.value == "completed":
            assert result.verdict.ok
