"""Tests for transient memory-failure injection (paper §4 extension).

The paper does NOT claim resilience to memory failures — these tests
document the observed boundary: which corruptions Algorithm 1 happens to
survive, and which forge its state (the motivation for combining memory-
and timing-failure resilience as future work).
"""

import pytest

from repro.core.consensus import TimeResilientConsensus, labeled_decision, run_consensus
from repro.sim import (
    ConstantTiming,
    Engine,
    MemoryFault,
    Register,
    read,
)
from repro.sim.registers import RegisterNamespace
from repro.spec import check_consensus


class TestInjection:
    def test_fault_applies_at_scheduled_time(self):
        r = Register("cell", 0)

        def reader(pid):
            before = yield read(r)
            # Spin until past the fault time.
            value = before
            for _ in range(20):
                value = yield read(r)
            return (before, value)

        eng = Engine(delta=1.0, timing=ConstantTiming(0.5),
                     faults=[MemoryFault(at=3.0, register=r, value=99)])
        eng.spawn(reader(0))
        res = eng.run()
        before, after = res.returns[0]
        assert before == 0
        assert after == 99

    def test_fault_recorded_in_trace(self):
        r = Register("cell", 0)

        def prog(pid):
            yield read(r)

        eng = Engine(delta=1.0, timing=ConstantTiming(0.5),
                     faults=[MemoryFault(at=0.1, register=r, value=7)])
        eng.spawn(prog(0))
        res = eng.run()
        faults = [e for e in res.trace if e.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].value == 7

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            MemoryFault(at=-1.0, register=Register("x"), value=0)

    def test_fault_linearizes_between_steps(self):
        """A read completing before the fault returns the old value."""
        r = Register("cell", 0)

        def prog(pid):
            first = yield read(r)  # completes at 0.5 < fault at 1.0
            second = yield read(r)  # completes at 1.0... tie with fault
            third = yield read(r)  # completes at 1.5 > fault
            return (first, third)

        eng = Engine(delta=1.0, timing=ConstantTiming(0.5),
                     faults=[MemoryFault(at=1.0, register=r, value=5)])
        eng.spawn(prog(0))
        res = eng.run()
        first, third = res.returns[0]
        assert first == 0
        assert third == 5


class TestConsensusUnderMemoryFaults:
    """The documented boundary of Algorithm 1 vs memory corruption."""

    def test_stale_round_corruption_after_decision_is_harmless(self):
        """Corrupting a round-1 flag after everyone decided changes nothing."""
        consensus = TimeResilientConsensus(delta=1.0,
                                           namespace=RegisterNamespace("mfa"))
        fault = MemoryFault(at=50.0, register=consensus.x[1, 0], value=0)
        eng = Engine(delta=1.0, timing=ConstantTiming(0.5), faults=[fault])
        inputs = {0: 0, 1: 1}
        for pid, v in inputs.items():
            eng.spawn(labeled_decision(consensus.propose(pid, v)), pid=pid)
        res = eng.run()
        verdict = check_consensus(res, inputs)
        assert verdict.ok

    def test_corrupted_decide_register_forges_decisions(self):
        """The negative control: Algorithm 1 is NOT memory-failure
        resilient — corrupting `decide` mid-run can violate validity for
        late readers (this is exactly the future-work gap the paper
        names)."""
        consensus = TimeResilientConsensus(delta=1.0,
                                           namespace=RegisterNamespace("mfb"))
        # Corrupt decide to a never-proposed value before a late process
        # arrives; the latecomer adopts the forged decision.
        fault = MemoryFault(at=5.0, register=consensus.decide, value=1)
        eng = Engine(delta=1.0, timing=ConstantTiming(0.5), faults=[fault])
        inputs = {0: 0, 1: 0}
        eng.spawn(labeled_decision(consensus.propose(0, 0)), pid=0)
        eng.spawn(labeled_decision(consensus.propose(1, 0)), pid=1,
                  start_time=10.0)
        res = eng.run()
        verdict = check_consensus(res, inputs, require_termination=False)
        # pid 1 decided the forged value 1, which nobody proposed.
        assert not verdict.valid

    def test_pre_decision_y_corruption_keeps_agreement(self):
        """Corrupting y[1] mid-round may change WHICH value wins, but all
        processes still agree (y corruption acts like another proposal)."""
        consensus = TimeResilientConsensus(delta=1.0,
                                           namespace=RegisterNamespace("mfc"))
        fault = MemoryFault(at=1.7, register=consensus.y[1], value=1)
        eng = Engine(delta=1.0, timing=ConstantTiming(0.5), faults=[fault])
        inputs = {0: 0, 1: 1}
        for pid, v in inputs.items():
            eng.spawn(labeled_decision(consensus.propose(pid, v)), pid=pid)
        res = eng.run()
        verdict = check_consensus(res, inputs)
        assert verdict.agreed


class TestMutexUnderMemoryFaults:
    def test_doorway_corruption_does_not_break_exclusion(self):
        """Corrupting Algorithm 3's doorway register x floods A — the same
        situation a timing failure creates — and A keeps the CS safe."""
        from repro.algorithms import mutex_session
        from repro.core.mutex import default_time_resilient_mutex
        from repro.spec import check_mutual_exclusion

        lock = default_time_resilient_mutex(3, delta=1.0)
        # Force the doorway open while someone is inside.
        faults = [MemoryFault(at=t, register=lock.x, value=None)
                  for t in (2.0, 5.0, 8.0)]
        eng = Engine(delta=1.0, timing=ConstantTiming(0.4), faults=faults,
                     max_time=50_000.0)
        for pid in range(3):
            eng.spawn(mutex_session(lock, pid, 3, cs_duration=0.5,
                                    ncs_duration=0.2), pid=pid)
        res = eng.run()
        assert check_mutual_exclusion(res.trace) == []
