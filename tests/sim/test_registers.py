"""Unit tests for registers, arrays, namespaces and memory."""

import pytest

from repro.sim.registers import Array, Memory, Register, RegisterNamespace


class TestRegister:
    def test_equality_by_name(self):
        assert Register("a", 0) == Register("a", 0)
        assert Register("a") != Register("b")

    def test_hashable(self):
        assert len({Register("a"), Register("a"), Register("b")}) == 2

    def test_read_write_op_builders(self):
        r = Register("a", 5)
        assert r.read().register == r
        op = r.write(9)
        assert op.register == r and op.value == 9


class TestArray:
    def test_single_index(self):
        arr = Array("x", initial=0)
        reg = arr[3]
        assert reg.name == ("x", 3)
        assert reg.initial == 0

    def test_multi_index_matches_paper_notation(self):
        arr = Array("x", initial=0)
        reg = arr[2, 1]  # x[r, v]
        assert reg.name == ("x", 2, 1)

    def test_initial_inherited(self):
        arr = Array("y", initial=None)
        assert arr[10].initial is None

    def test_unbounded_indices(self):
        arr = Array("x")
        assert arr[10**9].name == ("x", 10**9)


class TestMemory:
    def test_read_unwritten_returns_initial(self):
        mem = Memory()
        assert mem.read(Register("a", 42)) == 42

    def test_write_then_read(self):
        mem = Memory()
        r = Register("a", 0)
        mem.write(r, 7)
        assert mem.read(r) == 7

    def test_conflicting_initials_rejected(self):
        mem = Memory()
        mem.read(Register("a", 0))
        with pytest.raises(ValueError):
            mem.read(Register("a", 1))

    def test_register_count_tracks_touches(self):
        mem = Memory()
        mem.read(Register("a"))
        mem.write(Register("b"), 1)
        mem.read(Register("a"))
        assert mem.register_count == 2
        assert mem.touched_registers == {"a", "b"}

    def test_read_write_counts(self):
        mem = Memory()
        r = Register("a")
        mem.write(r, 1)
        mem.read(r)
        mem.read(r)
        assert mem.write_count == 1
        assert mem.read_count == 2

    def test_peek_poke_do_not_touch(self):
        mem = Memory()
        r = Register("a", 3)
        assert mem.peek(r) == 3
        mem.poke(r, 9)
        assert mem.peek(r) == 9
        assert mem.register_count == 0

    def test_snapshot_is_a_copy(self):
        mem = Memory()
        r = Register("a")
        mem.write(r, 1)
        snap = mem.snapshot()
        snap["a"] = 99
        assert mem.read(r) == 1


class TestFingerprint:
    def test_empty_memory_fingerprint(self):
        assert Memory().fingerprint() == ()

    def test_write_back_to_initial_matches_unwritten(self):
        """'Restored to default' and 'never written' must coincide."""
        mem1 = Memory()
        r = Register("a", 0)
        mem1.write(r, 5)
        mem1.write(r, 0)
        mem2 = Memory()
        mem2.read(r)
        assert mem1.fingerprint() == mem2.fingerprint()

    def test_different_values_differ(self):
        r = Register("a", 0)
        mem1, mem2 = Memory(), Memory()
        mem1.write(r, 1)
        mem2.write(r, 2)
        assert mem1.fingerprint() != mem2.fingerprint()

    def test_fingerprint_hashable_with_list_values(self):
        mem = Memory()
        mem.write(Register("a"), [1, 2, [3]])
        hash(mem.fingerprint())  # must not raise

    def test_fingerprint_hashable_with_dict_values(self):
        mem = Memory()
        mem.write(Register("a"), {"k": [1]})
        hash(mem.fingerprint())


class TestRegisterNamespace:
    def test_prefixes_names(self):
        ns = RegisterNamespace("alg")
        assert ns.register("x").name == ("alg", "x")

    def test_array_prefixed(self):
        ns = RegisterNamespace("alg")
        assert ns.array("x")[1, 0].name == (("alg", "x"), 1, 0)

    def test_child_namespaces_disjoint(self):
        ns = RegisterNamespace("a")
        r1 = ns.child("one").register("x")
        r2 = ns.child("two").register("x")
        assert r1 != r2

    def test_two_namespaces_do_not_collide_in_memory(self):
        mem = Memory()
        a = RegisterNamespace("A").register("x", 0)
        b = RegisterNamespace("B").register("x", 0)
        mem.write(a, 1)
        assert mem.read(b) == 0
