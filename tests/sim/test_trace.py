"""Unit tests for traces and their queries."""

import pytest

from repro.sim import ops
from repro.sim.trace import EventKind, Trace, TraceEvent


def ev(seq, pid, kind, issued, completed, register=None, value=None, label=None,
       exceeded=False):
    return TraceEvent(
        seq=seq,
        pid=pid,
        kind=kind,
        issued=issued,
        completed=completed,
        register=register,
        value=value,
        label=label,
        exceeded_delta=exceeded,
    )


def lbl(seq, pid, kind, t, value=None):
    return ev(seq, pid, EventKind.LABEL, t, t, label=kind, value=value)


class TestBasics:
    def test_append_order_enforced(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, 0.0, 1.0))
        with pytest.raises(ValueError):
            tr.append(ev(1, 0, EventKind.READ, 0.0, 0.5))

    def test_finalize_blocks_append(self):
        tr = Trace(delta=1.0)
        tr.finalize()
        with pytest.raises(RuntimeError):
            tr.append(ev(0, 0, EventKind.READ, 0.0, 1.0))

    def test_delta_positive(self):
        with pytest.raises(ValueError):
            Trace(delta=0)

    def test_end_time(self):
        tr = Trace(delta=1.0)
        assert tr.end_time == 0.0
        tr.append(ev(0, 0, EventKind.READ, 0.0, 2.5))
        assert tr.end_time == 2.5

    def test_for_pid_and_pids(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, 0.0, 0.5))
        tr.append(ev(1, 1, EventKind.WRITE, 0.0, 0.6))
        assert len(tr.for_pid(0)) == 1
        assert tr.pids() == {0, 1}

    def test_shared_step_count(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, 0.0, 0.5))
        tr.append(ev(1, 0, EventKind.DELAY, 0.5, 1.5))
        tr.append(ev(2, 0, EventKind.WRITE, 1.5, 2.0))
        assert tr.shared_step_count() == 2
        assert tr.shared_step_count(0) == 2
        assert tr.shared_step_count(1) == 0

    def test_events_between(self):
        tr = Trace(delta=1.0)
        for i in range(5):
            tr.append(ev(i, 0, EventKind.READ, float(i), float(i) + 0.5))
        between = tr.events_between(1.4, 3.6)
        assert [e.seq for e in between] == [1, 2, 3]


class TestTimingFailures:
    def test_detection_and_last_time(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, 0.0, 0.5))
        tr.append(ev(1, 0, EventKind.WRITE, 0.5, 3.0, exceeded=True))
        tr.append(ev(2, 0, EventKind.READ, 3.0, 3.5))
        assert len(tr.timing_failures()) == 1
        assert tr.last_failure_time == 3.0

    def test_no_failures(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, 0.0, 0.5))
        assert tr.last_failure_time == 0.0


class TestDecisions:
    def test_decisions_from_labels(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.DECIDED, 2.0, value=1))
        tr.append(lbl(1, 1, ops.DECIDED, 3.0, value=1))
        assert tr.decisions() == {0: (2.0, 1), 1: (3.0, 1)}
        assert tr.decision_time(1) == 3.0
        assert tr.decision_time(9) is None

    def test_first_decision_kept(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.DECIDED, 2.0, value=1))
        tr.append(lbl(1, 0, ops.DECIDED, 3.0, value=1))
        assert tr.decisions()[0] == (2.0, 1)


class TestCsIntervals:
    def test_matched_pairs(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.CS_ENTER, 1.0))
        tr.append(lbl(1, 0, ops.CS_EXIT, 2.0))
        tr.append(lbl(2, 1, ops.CS_ENTER, 3.0))
        tr.append(lbl(3, 1, ops.CS_EXIT, 4.0))
        ivs = tr.cs_intervals()
        assert [(iv.pid, iv.enter, iv.exit) for iv in ivs] == [(0, 1.0, 2.0), (1, 3.0, 4.0)]
        assert ivs[0].session == 0

    def test_unmatched_enter_closes_at_end(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.CS_ENTER, 1.0))
        tr.append(lbl(1, 1, ops.CS_ENTER, 5.0))
        ivs = tr.cs_intervals()
        assert all(iv.exit == 5.0 for iv in ivs)

    def test_double_enter_rejected(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.CS_ENTER, 1.0))
        tr.append(lbl(1, 0, ops.CS_ENTER, 2.0))
        with pytest.raises(ValueError):
            tr.cs_intervals()

    def test_exit_without_enter_rejected(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.CS_EXIT, 1.0))
        with pytest.raises(ValueError):
            tr.cs_intervals()

    def test_sessions_numbered(self):
        tr = Trace(delta=1.0)
        for i, (enter, exit_) in enumerate([(1.0, 2.0), (3.0, 4.0)]):
            tr.append(lbl(2 * i, 0, ops.CS_ENTER, enter))
            tr.append(lbl(2 * i + 1, 0, ops.CS_EXIT, exit_))
        assert [iv.session for iv in tr.cs_intervals()] == [0, 1]

    def test_overlap_detection_helper(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.CS_ENTER, 1.0))
        tr.append(lbl(1, 1, ops.CS_ENTER, 1.5))
        tr.append(lbl(2, 0, ops.CS_EXIT, 2.0))
        tr.append(lbl(3, 1, ops.CS_EXIT, 2.5))
        a, b = tr.cs_intervals()
        assert a.overlaps(b) and b.overlaps(a)


class TestSpans:
    def test_entry_spans(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.ENTRY_START, 0.5))
        tr.append(lbl(1, 0, ops.CS_ENTER, 2.0))
        assert tr.entry_spans() == [(0, 0.5, 2.0)]

    def test_truncated_entry_span(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.ENTRY_START, 0.5))
        tr.append(lbl(1, 1, ops.CS_ENTER, 4.0))
        spans = tr.entry_spans(pid=0)
        assert spans == [(0, 0.5, 4.0)]  # runs to end of trace

    def test_exit_spans(self):
        tr = Trace(delta=1.0)
        tr.append(lbl(0, 0, ops.CS_EXIT, 1.0))
        tr.append(lbl(1, 0, ops.EXIT_DONE, 1.5))
        assert tr.exit_spans() == [(0, 1.0, 1.5)]


class TestRegisterHistory:
    def test_filtered_by_register(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.WRITE, 0.0, 0.5, register="a", value=1))
        tr.append(ev(1, 1, EventKind.READ, 0.5, 1.0, register="b", value=0))
        tr.append(ev(2, 1, EventKind.READ, 1.0, 1.5, register="a", value=1))
        hist = tr.register_history("a")
        assert [e.seq for e in hist] == [0, 2]
        assert tr.registers_touched() == {"a", "b"}
