"""Regression tests: default-constructed algorithm instances never collide.

Two objects built without explicit namespaces used to share a fixed
prefix and silently corrupt each other's registers; defaults are now
instance-unique (``RegisterNamespace.unique``)."""

import pytest

from repro.algorithms import AtConsensus, FischerLock, TicketLock
from repro.core.consensus import TimeResilientConsensus
from repro.core.derived import MultivaluedConsensus, Universal
from repro.sim import ConstantTiming, Engine
from repro.sim.registers import RegisterNamespace
from repro.spec import QueueModel, StackModel


def test_unique_namespaces_differ():
    a = RegisterNamespace.unique("thing")
    b = RegisterNamespace.unique("thing")
    assert a.register("x") != b.register("x")


def test_two_default_consensus_objects_independent():
    a = TimeResilientConsensus(delta=1.0)
    b = TimeResilientConsensus(delta=1.0)
    assert a.decide != b.decide
    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    eng.spawn(a.propose(0, 0), pid=0)
    eng.spawn(b.propose(1, 1), pid=1)
    res = eng.run()
    assert res.returns == {0: 0, 1: 1}  # truly independent decisions


def test_two_default_locks_independent():
    a = FischerLock(delta=1.0)
    b = FischerLock(delta=1.0)
    assert a.x != b.x


def test_two_default_ticket_locks_independent():
    a = TicketLock()
    b = TicketLock()
    assert a.next_ticket != b.next_ticket


def test_two_default_universal_objects_coexist():
    """The scenario that exposed the bug: a queue and a stack sharing a
    run with default namespaces."""
    queue = Universal(n=1, delta=1.0, model=QueueModel(), object_id="uq")
    stack = Universal(n=1, delta=1.0, model=StackModel(), object_id="us")

    def worker(pid):
        q = queue.client(pid)
        s = stack.client(pid)
        yield from q.invoke("enqueue", "item")
        yield from s.invoke("push", "thing")
        a = yield from q.invoke("dequeue")
        b = yield from s.invoke("pop")
        return (a, b)

    eng = Engine(delta=1.0, timing=ConstantTiming(0.5), max_time=100_000.0)
    eng.spawn(worker(0), pid=0)
    res = eng.run()
    assert res.returns[0] == ("item", "thing")


def test_two_default_multivalued_objects_independent():
    a = MultivaluedConsensus(n=2, delta=1.0)
    b = MultivaluedConsensus(n=2, delta=1.0)
    assert a.announce[0] != b.announce[0]


def test_two_default_at_consensus_independent():
    a = AtConsensus(delta=1.0)
    b = AtConsensus(delta=1.0)
    assert a.y != b.y
