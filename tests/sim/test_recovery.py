"""Crash-recovery restarts: RecoverSchedule wiring through the engine."""

import math

import pytest

from repro.obs.tracer import Tracer, trace_scope
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    ProcessState,
    RecoverSchedule,
    Register,
    RunStatus,
    read,
    write,
)

X = Register("x", 0)


def bump(pid):
    v = yield read(X)
    yield write(X, v + 1)
    return v


class TestRecoverSchedule:
    def test_validation_rejects_negative_and_nan(self):
        with pytest.raises(ValueError):
            RecoverSchedule(at_time={0: -1.0})
        with pytest.raises(ValueError):
            RecoverSchedule(at_time={0: float("nan")})

    def test_recover_time_defaults_to_inf(self):
        rs = RecoverSchedule(at_time={0: 5.0})
        assert rs.recover_time(0) == 5.0
        assert rs.recover_time(1) == math.inf
        assert rs.recovers(0) and not rs.recovers(1)

    def test_none_has_no_restarts(self):
        assert not RecoverSchedule.none().recovers(0)


class TestEngineRestart:
    def _engine(self, crashes=None, recoveries=None):
        return Engine(
            delta=10.0,
            timing=ConstantTiming(1.0),
            crashes=crashes,
            recoveries=recoveries,
        )

    def test_restart_rebuilds_program_over_persistent_registers(self):
        # Crash at 1.5: the read (completes at 1.0) lands, the write
        # (would complete at 2.0) dies with the incarnation.  The restart
        # at 5.0 runs a *fresh* program — which sees x still 0 — and this
        # time completes.
        eng = self._engine(
            crashes=CrashSchedule(at_time={0: 1.5}),
            recoveries=RecoverSchedule(at_time={0: 5.0}),
        )
        eng.spawn(bump(0), pid=0, factory=bump)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        assert res.returns == {0: 0}
        assert eng.memory.read(X) == 1
        assert eng.processes[0].state is ProcessState.DONE
        assert eng.processes[0].incarnation == 1

    def test_registers_survive_the_crash(self):
        # pid 1 writes before pid 0's restart; the fresh incarnation must
        # observe that write — shared memory is persistent state.
        eng = self._engine(
            crashes=CrashSchedule(at_time={0: 0.5}),
            recoveries=RecoverSchedule(at_time={0: 5.0}),
        )
        eng.spawn(bump(0), pid=0, factory=bump)
        eng.spawn(bump(1), pid=1)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        # pid 1 ran alone (read 0, wrote 1); pid 0's second incarnation
        # then read 1 and wrote 2.
        assert res.returns == {0: 1, 1: 0}
        assert eng.memory.read(X) == 2

    def test_restart_events_appear_in_trace(self):
        eng = self._engine(
            crashes=CrashSchedule(at_time={0: 0.5}),
            recoveries=RecoverSchedule(at_time={0: 4.0}),
        )
        eng.spawn(bump(0), pid=0, factory=bump)
        eng.run()
        (restart,) = eng.trace.restarts(0)
        assert restart.completed == 4.0
        assert eng.trace.last_restart_time == 4.0

    def test_restart_of_uncrashed_process_is_noop(self):
        # The program finishes at 2.0, before the 5.0 restart fires; only
        # CRASHED processes restart.
        eng = self._engine(recoveries=RecoverSchedule(at_time={0: 5.0}))
        eng.spawn(bump(0), pid=0, factory=bump)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        assert eng.processes[0].incarnation == 0
        assert eng.trace.restarts() == []

    def test_restart_scheduled_before_crash_is_noop(self):
        # Recover at 1.0, crash at 1.5: when the restart event fires the
        # process is not CRASHED, so it stays down for good afterwards.
        eng = self._engine(
            crashes=CrashSchedule(at_time={0: 1.5}),
            recoveries=RecoverSchedule(at_time={0: 1.0}),
        )
        eng.spawn(bump(0), pid=0, factory=bump)
        res = eng.run()
        assert eng.processes[0].state is ProcessState.CRASHED
        assert 0 not in res.returns

    def test_spawn_requires_factory_when_recovery_scheduled(self):
        eng = self._engine(recoveries=RecoverSchedule(at_time={0: 5.0}))
        with pytest.raises(ValueError, match="factory"):
            eng.spawn(bump(0), pid=0)

    def test_predecessor_crash_does_not_kill_new_incarnation(self):
        # The crash event is stamped with incarnation 0.  Restarting at
        # the same instant the crash fires must not let the stale event
        # kill incarnation 1.
        eng = self._engine(
            crashes=CrashSchedule(at_time={0: 0.5}),
            recoveries=RecoverSchedule(at_time={0: 0.5}),
        )
        eng.spawn(bump(0), pid=0, factory=bump)
        res = eng.run()
        assert eng.processes[0].state is ProcessState.DONE
        assert res.returns[0] == 0

    def test_obs_tracer_records_restart_marker(self):
        tracer = Tracer()
        with trace_scope(tracer):
            eng = self._engine(
                crashes=CrashSchedule(at_time={0: 0.5}),
                recoveries=RecoverSchedule(at_time={0: 3.0}),
            )
            eng.spawn(bump(0), pid=0, factory=bump)
            eng.run()
        marks = [r for r in tracer.records if r["kind"] == "restart"]
        assert marks == [{"kind": "restart", "pid": 0, "t": 3.0}]
