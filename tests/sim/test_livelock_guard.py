"""The engine's zero-duration livelock guard.

``Label`` ops consume no simulated time, so a program spinning on labels
alone would keep the event loop at the same instant forever.  The engine
bounds any run of consecutive zero-duration operations at
``_MAX_ZERO_DURATION_RUN`` and reports a livelock instead of hanging.
"""

import pytest

from repro.sim import (
    ConstantTiming,
    Engine,
    Register,
    RunStatus,
    SimulationError,
    label,
    read,
    write,
)
from repro.sim.engine import _MAX_ZERO_DURATION_RUN

X = Register("x", 0)


def test_zero_duration_label_spin_is_reported_not_hung():
    def spinner(pid):
        yield write(X, pid)
        while True:  # never yields a time-consuming op again
            yield label("spin", pid)

    eng = Engine(delta=1.0, timing=ConstantTiming(1.0))
    eng.spawn(spinner(0))
    with pytest.raises(SimulationError, match="livelock"):
        eng.run()


def test_livelock_message_names_the_process():
    def spinner(pid):
        yield write(X, pid)
        while True:
            yield label("spin", pid)

    eng = Engine(delta=1.0, timing=ConstantTiming(1.0))
    eng.spawn(spinner(3), pid=3, name="spinny")
    with pytest.raises(SimulationError, match=r"process 3 \(spinny\)"):
        eng.run()


def test_long_finite_label_run_below_threshold_completes():
    def chatty(pid):
        yield write(X, pid)
        for i in range(_MAX_ZERO_DURATION_RUN - 1):
            yield label("tick", i)
        v = yield read(X)
        return v

    eng = Engine(delta=1.0, timing=ConstantTiming(1.0))
    eng.spawn(chatty(0))
    res = eng.run()
    assert res.status is RunStatus.COMPLETED
    assert res.returns == {0: 0}
