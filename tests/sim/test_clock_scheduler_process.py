"""Unit tests for the virtual clock, tie-break policies and processes."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.process import Process, ProcessState
from repro.sim.scheduler import FifoTieBreak, PidOrderTieBreak, RandomTieBreak


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        c = VirtualClock()
        c.advance_to(3.0)
        assert c.now == 3.0

    def test_no_backwards(self):
        c = VirtualClock(start=2.0)
        with pytest.raises(ValueError):
            c.advance_to(1.0)

    def test_advance_to_same_time_ok(self):
        c = VirtualClock(start=2.0)
        c.advance_to(2.0)
        assert c.now == 2.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)


class TestTieBreaks:
    def test_fifo_orders_by_seq(self):
        tb = FifoTieBreak()
        assert tb.priority(5, 1) < tb.priority(0, 2)

    def test_pid_order(self):
        tb = PidOrderTieBreak([2, 0, 1])
        assert tb.priority(2, 99) < tb.priority(0, 1)
        assert tb.priority(0, 99) < tb.priority(1, 1)

    def test_pid_order_unknown_pids_last(self):
        tb = PidOrderTieBreak([1])
        assert tb.priority(1, 0) < tb.priority(7, 0)

    def test_random_deterministic_per_seed(self):
        a = RandomTieBreak(seed=3)
        b = RandomTieBreak(seed=3)
        assert [a.priority(0, i) for i in range(5)] == [
            b.priority(0, i) for i in range(5)
        ]

    def test_random_differs_across_seeds(self):
        a = [RandomTieBreak(seed=1).priority(0, i) for i in range(5)]
        b = [RandomTieBreak(seed=2).priority(0, i) for i in range(5)]
        assert a != b


class TestProcess:
    def _prog(self):
        yield from ()

    def test_default_name(self):
        p = Process(3, self._prog())
        assert p.name == "p3"

    def test_alive_states(self):
        p = Process(0, self._prog())
        assert p.alive
        p.state = ProcessState.DONE
        assert not p.alive and p.decided
        p.state = ProcessState.CRASHED
        assert not p.alive and not p.decided
