"""Unit tests for register_leaf and the round-conflict adversary."""

import pytest

from repro.core.consensus import run_consensus
from repro.sim import ConstantTiming, HookTiming, Read, Register, Write
from repro.sim.adversary import register_leaf, round_conflict_hook
from repro.sim.registers import RegisterNamespace
from repro.sim.timing import StepContext


class TestRegisterLeaf:
    def test_plain_register_in_namespace(self):
        r = RegisterNamespace("c").register("decide")
        assert register_leaf(r.name) == "decide"

    def test_array_cell_in_namespace(self):
        arr = RegisterNamespace("c").array("x")
        assert register_leaf(arr[1, 0].name) == "x"

    def test_nested_namespaces(self):
        ns = RegisterNamespace(("t", 1.0))
        assert register_leaf(ns.register("decide").name) == "decide"
        assert register_leaf(ns.array("y")[3].name) == "y"

    def test_flat_name_passthrough(self):
        assert register_leaf("plain") == "plain"

    def test_deeply_nested_child(self):
        ns = RegisterNamespace("a").child("b").child(("c", 2))
        assert register_leaf(ns.array("x")[0].name) == "x"

    def test_unique_default_namespaces(self):
        """Regression: the unique-suffix discriminator must never be
        mistaken for the register's leaf name."""
        ns = RegisterNamespace.unique("consensus")
        assert register_leaf(ns.register("decide").name) == "decide"
        assert register_leaf(ns.array("x")[1, 0].name) == "x"
        assert register_leaf(ns.array("y")[7].name) == "y"


class TestRoundConflictHook:
    def _ctx(self, op, pid):
        return StepContext(pid=pid, op=op, now=0.0, step_index=0)

    def test_x_writes_stalled_for_everyone(self):
        hook = round_conflict_hook(delta=1.0)
        ns = RegisterNamespace("c")
        op = Write(ns.array("x")[1, 0], 1)
        assert hook(self._ctx(op, 0), 0.01) == 1.0
        assert hook(self._ctx(op, 1), 0.01) == 1.0

    def test_slow_pid_y_writes_stalled(self):
        hook = round_conflict_hook(delta=1.0, slow_pid=1, fast_pid=0)
        ns = RegisterNamespace("c")
        op = Write(ns.array("y")[1], 0)
        assert hook(self._ctx(op, 1), 0.01) == 1.0
        assert hook(self._ctx(op, 0), 0.01) is None

    def test_fast_pid_decide_reads_stalled(self):
        hook = round_conflict_hook(delta=1.0, slow_pid=1, fast_pid=0)
        ns = RegisterNamespace("c")
        op = Read(ns.register("decide"))
        assert hook(self._ctx(op, 0), 0.01) == 1.0

    def test_slow_pid_first_decide_read_only(self):
        hook = round_conflict_hook(delta=1.0, slow_pid=1, fast_pid=0)
        ns = RegisterNamespace("c")
        op = Read(ns.register("decide"))
        assert hook(self._ctx(op, 1), 0.01) == 1.0  # the first one
        assert hook(self._ctx(op, 1), 0.01) is None  # never again

    def test_other_registers_untouched(self):
        hook = round_conflict_hook(delta=1.0)
        op = Read(Register("unrelated"))
        assert hook(self._ctx(op, 0), 0.01) is None


class TestEndToEndThreshold:
    """The adversary's defining property: a sharp liveness cliff at Δ."""

    def _run(self, estimate):
        timing = HookTiming(ConstantTiming(0.01), round_conflict_hook(1.0))
        return run_consensus([0, 1], delta=1.0, timing=timing,
                             algorithm_delta=estimate, max_time=80.0)

    def test_below_delta_never_decides_but_safe(self):
        result = self._run(0.5)
        assert not result.verdict.terminated
        assert result.verdict.safe

    def test_at_delta_decides_round_two(self):
        result = self._run(1.0)
        assert result.verdict.ok
        delays = [e for e in result.run.trace.for_pid(0) if e.kind == "delay"]
        assert len(delays) == 1  # exactly one failed round
