"""Unit tests for timing models."""

import pytest

from repro.sim.failures import failure_window
from repro.sim.ops import Read
from repro.sim.registers import Register
from repro.sim.timing import (
    AsynchronousTiming,
    ConstantTiming,
    FailureWindowTiming,
    HookTiming,
    PerProcessTiming,
    StepContext,
    UniformTiming,
)


def ctx(pid=0, now=0.0, step_index=0):
    return StepContext(pid=pid, op=Read(Register("r")), now=now, step_index=step_index)


class TestConstantTiming:
    def test_constant(self):
        t = ConstantTiming(0.5)
        assert t.shared_step_duration(ctx()) == 0.5
        assert t.shared_step_duration(ctx(now=100.0)) == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantTiming(0)

    def test_delay_exact(self):
        assert ConstantTiming(0.5).delay_duration(0, 2.0, 0.0) == 2.0

    def test_local_exact(self):
        assert ConstantTiming(0.5).local_duration(0, 3.0, 0.0) == 3.0


class TestUniformTiming:
    def test_within_bounds(self):
        t = UniformTiming(0.2, 0.9, seed=1)
        for _ in range(200):
            d = t.shared_step_duration(ctx())
            assert 0.2 <= d <= 0.9

    def test_deterministic_given_seed(self):
        a = [UniformTiming(0.1, 1.0, seed=7).shared_step_duration(ctx()) for _ in range(1)]
        b = [UniformTiming(0.1, 1.0, seed=7).shared_step_duration(ctx()) for _ in range(1)]
        assert a == b

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformTiming(0.9, 0.2)
        with pytest.raises(ValueError):
            UniformTiming(0.0, 1.0)


class TestPerProcessTiming:
    def test_per_pid_deltas(self):
        t = PerProcessTiming({0: 0.2, 1: 0.8}, default=0.5)
        assert t.shared_step_duration(ctx(pid=0)) == 0.2
        assert t.shared_step_duration(ctx(pid=1)) == 0.8
        assert t.shared_step_duration(ctx(pid=9)) == 0.5

    def test_max_delta(self):
        t = PerProcessTiming({0: 0.2, 1: 0.8}, default=0.5)
        assert t.max_delta == 0.8

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PerProcessTiming({0: 0.0}, default=0.5)
        with pytest.raises(ValueError):
            PerProcessTiming({}, default=-1)


class TestFailureWindowTiming:
    def test_outside_window_nominal(self):
        t = FailureWindowTiming(
            ConstantTiming(0.5), [failure_window(1.0, 2.0, duration=9.0)]
        )
        assert t.shared_step_duration(ctx(now=0.5)) == 0.5
        assert t.shared_step_duration(ctx(now=2.0)) == 0.5  # end-exclusive

    def test_inside_window_stretched(self):
        t = FailureWindowTiming(
            ConstantTiming(0.5), [failure_window(1.0, 2.0, duration=9.0)]
        )
        assert t.shared_step_duration(ctx(now=1.0)) == 9.0

    def test_pid_filter(self):
        t = FailureWindowTiming(
            ConstantTiming(0.5), [failure_window(0.0, 10.0, pids=[3], duration=9.0)]
        )
        assert t.shared_step_duration(ctx(pid=3, now=1.0)) == 9.0
        assert t.shared_step_duration(ctx(pid=4, now=1.0)) == 0.5

    def test_stretch_factor(self):
        t = FailureWindowTiming(
            ConstantTiming(0.5), [failure_window(0.0, 1.0, stretch=4.0)]
        )
        assert t.shared_step_duration(ctx(now=0.0)) == 2.0

    def test_overlapping_windows_take_worst(self):
        t = FailureWindowTiming(
            ConstantTiming(0.5),
            [failure_window(0.0, 2.0, duration=3.0), failure_window(1.0, 2.0, duration=7.0)],
        )
        assert t.shared_step_duration(ctx(now=1.5)) == 7.0

    def test_last_failure_end(self):
        t = FailureWindowTiming(
            ConstantTiming(0.5),
            [failure_window(0.0, 2.0), failure_window(5.0, 8.0)],
        )
        assert t.last_failure_end == 8.0

    def test_delays_not_stretched(self):
        t = FailureWindowTiming(
            ConstantTiming(0.5), [failure_window(0.0, 10.0, duration=9.0)]
        )
        assert t.delay_duration(0, 1.0, 5.0) == 1.0


class TestAsynchronousTiming:
    def test_base_duration_common(self):
        t = AsynchronousTiming(base=0.5, tail_prob=0.0, seed=1)
        assert all(t.shared_step_duration(ctx()) == 0.5 for _ in range(50))

    def test_tail_exceeds_base(self):
        t = AsynchronousTiming(base=0.5, tail_prob=1.0, tail_scale=4.0, seed=2)
        d = t.shared_step_duration(ctx())
        assert d >= 0.5 * 4.0 * 1.0  # pareto variate >= 1

    def test_unbounded_in_distribution(self):
        """Over many draws the tail should exceed any modest bound."""
        t = AsynchronousTiming(base=0.5, tail_prob=0.3, seed=3)
        worst = max(t.shared_step_duration(ctx()) for _ in range(2000))
        assert worst > 5.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AsynchronousTiming(base=0)
        with pytest.raises(ValueError):
            AsynchronousTiming(base=1, tail_prob=1.5)


class TestHookTiming:
    def test_hook_override(self):
        t = HookTiming(ConstantTiming(0.5), lambda c, nominal: 9.0)
        assert t.shared_step_duration(ctx()) == 9.0

    def test_hook_none_keeps_nominal(self):
        t = HookTiming(ConstantTiming(0.5), lambda c, nominal: None)
        assert t.shared_step_duration(ctx()) == 0.5

    def test_hook_sees_context(self):
        seen = []
        t = HookTiming(ConstantTiming(0.5), lambda c, nominal: seen.append(c.pid))
        t.shared_step_duration(ctx(pid=7))
        assert seen == [7]
