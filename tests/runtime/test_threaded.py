"""Tests for the real-thread backend.

These run actual threads; wall-clock budgets are kept tiny (the default
time unit is 1 ms) and assertions avoid anything scheduler-dependent
beyond the algorithms' own guarantees.
"""

import pytest

from repro.algorithms import BakeryLock, mutex_session
from repro.core.consensus import TimeResilientConsensus, labeled_decision
from repro.core.mutex import default_time_resilient_mutex
from repro.runtime import ThreadedExecutor, measure_host_delta
from repro.sim import ops
from repro.sim.registers import Register


class TestExecutorBasics:
    def test_single_program(self):
        x = Register("x", 0)

        def prog(pid):
            v = yield ops.read(x)
            yield ops.write(x, v + 1)
            return v

        ex = ThreadedExecutor()
        ex.spawn(prog(0))
        res = ex.run(timeout=10.0)
        assert res.ok
        assert res.returns == {0: 0}
        assert res.store.peek(x) == 1

    def test_labels_recorded(self):
        def prog(pid):
            yield ops.label(ops.DECIDED, 42)
            yield ops.read(Register("y", 0))

        ex = ThreadedExecutor()
        ex.spawn(prog(0))
        res = ex.run(timeout=10.0)
        assert res.decisions() == {0: 42}

    def test_errors_reported(self):
        def bad(pid):
            yield ops.read(Register("z", 0))
            raise RuntimeError("boom")

        ex = ThreadedExecutor()
        ex.spawn(bad(0))
        res = ex.run(timeout=10.0)
        assert not res.ok
        assert isinstance(res.errors[0], RuntimeError)

    def test_duplicate_pid_rejected(self):
        ex = ThreadedExecutor()
        ex.spawn(iter(()), pid=0)
        with pytest.raises(ValueError):
            ex.spawn(iter(()), pid=0)

    def test_bad_time_unit(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(time_unit=0)


class TestConsensusOnThreads:
    @pytest.mark.parametrize("trial", range(3))
    def test_agreement_on_real_threads(self, trial):
        consensus = TimeResilientConsensus(delta=2.0)
        ex = ThreadedExecutor(time_unit=1e-3)
        n = 4
        for pid in range(n):
            ex.spawn(labeled_decision(consensus.propose(pid, pid % 2)), pid=pid)
        res = ex.run(timeout=30.0)
        assert res.ok, res.errors
        decisions = set(res.returns.values())
        assert len(decisions) == 1
        assert decisions.pop() in (0, 1)

    def test_solo_fast(self):
        consensus = TimeResilientConsensus(delta=1.0)
        ex = ThreadedExecutor()
        ex.spawn(consensus.propose(0, 1), pid=0)
        res = ex.run(timeout=10.0)
        assert res.returns == {0: 1}


class TestMutexOnThreads:
    @pytest.mark.parametrize("trial", range(2))
    def test_algorithm3_no_cs_overlap(self, trial):
        n = 3
        lock = default_time_resilient_mutex(n, delta=2.0)
        ex = ThreadedExecutor(time_unit=1e-3)
        for pid in range(n):
            ex.spawn(mutex_session(lock, pid, sessions=3, cs_duration=0.5,
                                   ncs_duration=0.2), pid=pid)
        res = ex.run(timeout=60.0)
        assert res.ok, res.errors
        assert not res.cs_overlap_detected()
        assert set(res.returns.values()) == {3}

    def test_bakery_no_cs_overlap(self):
        n = 3
        lock = BakeryLock(n)
        ex = ThreadedExecutor(time_unit=1e-3)
        for pid in range(n):
            ex.spawn(mutex_session(lock, pid, sessions=3, cs_duration=0.5,
                                   ncs_duration=0.2), pid=pid)
        res = ex.run(timeout=60.0)
        assert res.ok
        assert not res.cs_overlap_detected()


class TestHostDelta:
    def test_measurement_shape(self):
        report = measure_host_delta(threads=2, steps_per_thread=200)
        assert report.samples > 0
        assert 0 <= report.mean <= report.maximum
        assert report.p50 <= report.p99 <= report.maximum

    def test_optimistic_choice(self):
        report = measure_host_delta(threads=2, steps_per_thread=200)
        assert report.optimistic(0.99) == report.p99
        with pytest.raises(ValueError):
            report.optimistic(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_host_delta(threads=0)
