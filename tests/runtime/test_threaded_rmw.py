"""Real-thread tests for the RMW primitives and primitive-based locks."""

import pytest

from repro.algorithms import CasConsensus, TicketLock, mutex_session
from repro.runtime import ThreadedExecutor
from repro.sim import Register, fetch_and_add


class TestThreadedRmw:
    def test_concurrent_fetch_and_add_never_loses_updates(self):
        counter = Register("tc", 0)
        per_thread = 50
        threads = 4

        def incrementer(pid):
            observed = []
            for _ in range(per_thread):
                observed.append((yield fetch_and_add(counter, 1)))
            return observed

        ex = ThreadedExecutor(time_unit=1e-4)
        for pid in range(threads):
            ex.spawn(incrementer(pid), pid=pid)
        res = ex.run(timeout=60.0)
        assert res.ok, res.errors
        assert res.store.peek(counter) == threads * per_thread
        all_observed = sorted(v for vs in res.returns.values() for v in vs)
        assert all_observed == list(range(threads * per_thread))

    def test_cas_consensus_on_threads(self):
        algo = CasConsensus()
        ex = ThreadedExecutor(time_unit=1e-4)
        for pid, v in enumerate([10, 20, 30]):
            ex.spawn(algo.propose(pid, v), pid=pid)
        res = ex.run(timeout=30.0)
        assert res.ok
        decisions = set(res.returns.values())
        assert len(decisions) == 1
        assert decisions.pop() in (10, 20, 30)

    def test_ticket_lock_on_threads(self):
        lock = TicketLock()
        n = 3
        ex = ThreadedExecutor(time_unit=1e-4)
        for pid in range(n):
            ex.spawn(mutex_session(lock, pid, sessions=4, cs_duration=0.2,
                                   ncs_duration=0.1), pid=pid)
        res = ex.run(timeout=60.0)
        assert res.ok, res.errors
        assert not res.cs_overlap_detected()
        assert set(res.returns.values()) == {4}
        # FIFO dispenser state is consistent.
        assert res.store.peek(lock.next_ticket) == n * 4
        assert res.store.peek(lock.now_serving) == n * 4
