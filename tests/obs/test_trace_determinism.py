"""Trace byte-determinism: sequential vs sharded, repeated replays.

The contract under test: a trace is a pure function of the seed.  The
same campaign run twice, or sharded across workers and merged in global
run-index order (`repro.parallel.merge`), must yield byte-identical
JSONL — the same property the summary JSON already satisfies, extended
to the record stream.
"""

from repro.chaos.__main__ import main as chaos_main
from repro.obs import to_jsonl
from repro.parallel import make_shards, merge_fuzz_results, merge_net_reports
from repro.verify.fuzz import _campaign_shard, _net_shard
from repro.verify.fuzz import main as fuzz_main

ARTIFACT = "tests/chaos/artifacts/fischer_n3_violation.json"


def _chunk_bytes(chunks):
    return to_jsonl([r for _index, chunk in chunks for r in chunk])


class TestLibraryMerge:
    def test_registers_shards_merge_to_the_sequential_trace(self):
        payload = ("fischer_n3", 5, 12, True)
        [whole] = make_shards(12, 1, master_seed=5)
        sequential = _campaign_shard(whole, payload)
        parts = [
            _campaign_shard(shard, payload)
            for shard in make_shards(12, 3, master_seed=5)
        ]
        merged = merge_fuzz_results(parts)
        assert merged.trace_chunks  # tracing actually happened
        assert _chunk_bytes(merged.trace_chunks) == _chunk_bytes(
            sequential.trace_chunks
        )

    def test_net_shards_merge_to_the_sequential_trace(self):
        payload = (3, True)
        [whole] = make_shards(4, 1, master_seed=3)
        sequential = _net_shard(whole, payload)
        parts = [
            _net_shard(shard, payload)
            for shard in make_shards(4, 2, master_seed=3)
        ]
        merged = merge_net_reports(parts)
        assert merged.trace_chunks
        assert _chunk_bytes(merged.trace_chunks) == _chunk_bytes(
            sequential.trace_chunks
        )


class TestCliTraces:
    def test_fuzz_trace_workers_2_is_byte_identical_to_workers_1(
        self, tmp_path
    ):
        base = ["--seed", "42", "--schedules", "12"]
        t1, t2 = tmp_path / "w1.jsonl", tmp_path / "w2.jsonl"
        assert fuzz_main(base + ["--workers", "1", "--trace", str(t1)]) == 0
        assert fuzz_main(base + ["--workers", "2", "--trace", str(t2)]) == 0
        assert t1.read_bytes() and t1.read_bytes() == t2.read_bytes()

    def test_replay_trace_is_identical_across_invocations(self, tmp_path):
        t1, t2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert chaos_main(["replay", "--trace", str(t1), ARTIFACT]) == 0
        assert chaos_main(["replay", "--trace", str(t2), ARTIFACT]) == 0
        assert t1.read_bytes() and t1.read_bytes() == t2.read_bytes()
