"""Artifact schema v2: observability sidecars, schema-1 tolerance."""

import json

import pytest

from repro.chaos.artifact import (
    SCHEMA_VERSION,
    attach_observability,
    load_artifact,
    save_artifact,
)

ARTIFACT = "tests/chaos/artifacts/fischer_n3_violation.json"


class TestSchemaTolerance:
    def test_committed_schema_1_artifact_still_loads(self):
        raw = json.load(open(ARTIFACT))
        assert raw["schema"] == 1  # the fixture predates the sidecars
        artifact = load_artifact(ARTIFACT)
        assert artifact.net_stats is None and artifact.timeliness is None

    def test_unknown_schema_is_rejected(self, tmp_path):
        raw = json.load(open(ARTIFACT))
        raw["schema"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(raw))
        with pytest.raises(ValueError, match="unsupported artifact schema"):
            load_artifact(path)


class TestAttachObservability:
    def test_sim_artifact_gains_a_timeliness_sidecar(self, tmp_path):
        enriched = attach_observability(load_artifact(ARTIFACT))
        assert enriched.timeliness is not None
        assert enriched.timeliness["substrate"] == "steps"
        assert enriched.timeliness["links"]["p0"]["starved"]

        # Round trip: saved at schema 2, sidecar survives reloading,
        # and identity (campaign/payload/violation) is unchanged.
        path = tmp_path / "enriched.json"
        save_artifact(enriched, path)
        raw = json.loads(path.read_text())
        assert raw["schema"] == SCHEMA_VERSION
        reloaded = load_artifact(path)
        assert reloaded == load_artifact(ARTIFACT)  # sidecars never compare
        assert reloaded.timeliness == enriched.timeliness

    def test_attachment_is_deterministic(self):
        artifact = load_artifact(ARTIFACT)
        first = attach_observability(artifact).timeliness
        second = attach_observability(artifact).timeliness
        assert first == second
