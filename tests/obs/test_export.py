"""Exporters: JSONL round-trip, byte determinism, Chrome trace shape."""

import json

from repro.obs import (
    Tracer,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_jsonl,
)


def _sample_records():
    tracer = Tracer()
    tracer.run_marker("sim", target="demo", pids=[0, 1])
    tracer.engine_run("sim", 1.0, [1, 0])
    tracer.op("read", 0, "x", 0.0, 0.5)
    tracer.op("write", 1, "x", 0.5, 2.0, xd=True)
    tracer.msg_send(3, 0, 1, 1.0, 1.5)
    tracer.msg_recv(3, 0, 1, 1.6, 1.5)
    tracer.msg_drop(1, 0, 2.0)
    tracer.phase(0, "query", "r0", "start")
    tracer.phase(0, "query", "r0", "end")
    tracer.window(0.0, 4.0, [0], "timing")
    tracer.violation("mutual_exclusion", 3.0)
    tracer.done(0, 4.0)
    return tracer.take()


class TestJsonl:
    def test_round_trip(self, tmp_path):
        records = _sample_records()
        path = tmp_path / "t.jsonl"
        count = write_jsonl(records, str(path))
        assert count == len(records)
        assert read_jsonl(str(path)) == records

    def test_bytes_are_deterministic(self):
        assert to_jsonl(_sample_records()) == to_jsonl(_sample_records())

    def test_lines_have_sorted_keys_and_compact_separators(self):
        line = to_jsonl(_sample_records()).splitlines()[2]
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )

    def test_empty_trace_is_empty_document(self):
        assert to_jsonl([]) == ""


class TestChromeTrace:
    def test_event_phases(self):
        doc = to_chrome_trace(_sample_records())
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        assert "X" in phases  # op spans
        assert "s" in phases and "f" in phases  # message flow arrows
        assert "B" in phases and "E" in phases  # quorum phase pair
        assert "M" in phases  # process-name metadata
        # Timestamps are microseconds (ints when integral) — the op at
        # t0=0.5 lands at 500000us.
        write_spans = [e for e in events
                       if e["ph"] == "X" and e.get("name") == "write(x)"]
        assert write_spans and write_spans[0]["ts"] == 500000

    def test_document_is_json_serializable(self):
        json.dumps(to_chrome_trace(_sample_records()))
