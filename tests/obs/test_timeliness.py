"""Timeliness-graph mining: unit behaviour + the Fischer acceptance run.

The acceptance case is the issue's end-to-end contract: replaying the
committed ``fischer_n3_violation`` artifact under ``--trace`` and mining
the result must identify the fault-window-affected link — the starved
process the adversarial schedule froze out of its critical-section
doorway — while the processes that raced ahead stay timely.
"""

from repro.chaos.__main__ import main as chaos_main
from repro.obs import mine_timeliness, read_jsonl
from repro.obs.timeliness import delay_observations, format_timeliness

ARTIFACT = "tests/chaos/artifacts/fischer_n3_violation.json"

INF = float("inf")


def _net_records():
    return [
        {"kind": "run", "substrate": "net", "pids": [0, 1]},
        {"kind": "send", "id": 1, "src": 0, "dst": 1, "t": 0.0, "arrive": 1.0},
        {"kind": "send", "id": 2, "src": 0, "dst": 1, "t": 2.0, "arrive": 3.0},
        {"kind": "send", "id": 3, "src": 1, "dst": 0, "t": 1.0, "arrive": 9.0},
        {"kind": "window", "start": 0.5, "end": 2.0, "pids": [1], "fault": "spike"},
    ]


class TestDelayObservations:
    def test_substrate_is_inferred_from_message_records(self):
        substrate, observations = delay_observations(_net_records())
        assert substrate == "net"
        assert observations["0->1"] == [(0.0, 1.0), (2.0, 1.0)]
        assert observations["1->0"] == [(1.0, 8.0)]

    def test_drops_are_infinite_delays(self):
        records = _net_records() + [
            {"kind": "drop", "id": 4, "src": 1, "dst": 0, "t": 4.0}
        ]
        _, observations = delay_observations(records)
        assert observations["1->0"][-1] == (4.0, INF)


class TestMineTimeliness:
    def test_mined_delta_keeps_the_majority_timely(self):
        report = mine_timeliness(_net_records())
        assert report["delta_source"] == "mined"
        assert report["delta"] == 1.0
        assert report["timely"] == ["0->1"]
        assert report["untimely"] == ["1->0"]

    def test_explicit_delta_overrides_mining(self):
        report = mine_timeliness(_net_records(), delta=10.0)
        assert report["delta_source"] == "explicit"
        assert report["untimely"] == []

    def test_window_correlation_names_the_slow_link(self):
        report = mine_timeliness(_net_records())
        [window] = report["windows"]
        assert window["fault"] == "spike"
        assert window["affected_links"] == ["1->0"]

    def test_dropped_links_are_untimely_at_any_delta(self):
        records = _net_records() + [
            {"kind": "drop", "id": 4, "src": 1, "dst": 0, "t": 4.0}
        ]
        report = mine_timeliness(records, delta=100.0)
        assert "1->0" in report["untimely"]


class TestFischerAcceptance:
    def test_replay_trace_identifies_the_starved_process(self, tmp_path):
        """Issue acceptance: trace the committed violation, mine it, and
        the fault window's affected link is the process the schedule
        starved — classified untimely while the others stay timely."""
        trace = tmp_path / "fischer.jsonl"
        assert chaos_main(["replay", "--trace", str(trace), ARTIFACT]) == 0
        report = mine_timeliness(read_jsonl(str(trace)))
        assert report["substrate"] == "steps"
        assert report["links"]["p0"]["starved"]
        assert "p0" in report["untimely"]
        assert "p1" in report["timely"] and "p2" in report["timely"]
        # This artifact is fully shrunk (shrunk_fault_count == 0): the
        # schedule itself is the adversary, so there are no fault-window
        # records — window correlation is exercised on synthetic traces
        # in TestMineTimeliness above.
        assert report["windows"] == []
        rendered = format_timeliness(report)
        assert "STARVED" in rendered and "UNTIMELY" in rendered
