"""Tracer unit behaviour: canonicalization, scoping, zero perturbation."""

from repro.net import QuorumSystem
from repro.obs import Tracer, active_tracer, canonical, register_name, trace_scope
from repro.sim.instrument import EngineProbe, probe_scope
from repro.sim.registers import Register, RegisterNamespace


class TestCanonical:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert canonical(value) == value

    def test_tuples_become_lists_and_sets_sort(self):
        assert canonical((1, (2, 3))) == [1, [2, 3]]
        assert canonical({3, 1, 2}) == [1, 2, 3]

    def test_dict_keys_become_sorted_strings(self):
        assert canonical({2: "b", 1: "a"}) == {"1": "a", "2": "b"}


class TestRegisterName:
    def test_flat_names_pass_through(self):
        assert register_name("x") == "x"
        assert register_name(7) == 7

    def test_unique_namespace_discriminator_is_dropped(self):
        ns_a = RegisterNamespace.unique("fischer")
        ns_b = RegisterNamespace.unique("fischer")
        reg_a = ns_a.register("x")
        reg_b = ns_b.register("x")
        assert reg_a.name != reg_b.name  # distinct raw names...
        assert register_name(reg_a.name) == "fischer.x"  # ...same rendering
        assert register_name(reg_b.name) == "fischer.x"

    def test_child_namespace_suffixes_are_kept(self):
        ns = RegisterNamespace.unique("alg3").child("inner")
        assert register_name(ns.register("turn").name) == "alg3.inner.turn"

    def test_array_indices_are_kept(self):
        ns = RegisterNamespace.unique("cons")
        cell = ns.array("votes")[2]
        assert register_name(cell.name) == "cons.votes[2]"


class TestScope:
    def test_off_by_default(self):
        assert active_tracer() is None

    def test_trace_scope_sets_and_restores(self):
        tracer = Tracer()
        with trace_scope(tracer):
            assert active_tracer() is tracer
            inner = Tracer()
            with trace_scope(inner):
                assert active_tracer() is inner
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_take_drains_and_resets(self):
        tracer = Tracer()
        tracer.crash(1, 2.0)
        first = tracer.take()
        assert [r["kind"] for r in first] == ["crash"]
        assert len(tracer) == 0
        tracer.done(1, 3.0)
        assert [r["kind"] for r in tracer.take()] == ["done"]


class TestZeroPerturbation:
    def test_traced_quorum_run_has_identical_probe_counters(self):
        """The tracer's core contract: observation only, no behaviour drift."""

        def run_once():
            probe = EngineProbe()
            reg = Register("obs_t", 0)
            with probe_scope(probe):
                system = QuorumSystem(clients=2, replicas=3, bound=1.0, seed=9)

                def prog(register):
                    for i in range(4):
                        yield register.write(i)
                        yield register.read()

                result = system.run([prog(reg) for _ in range(2)])
            assert result.completed
            return probe.snapshot()

        baseline = run_once()
        tracer = Tracer()
        with trace_scope(tracer):
            traced = run_once()
        assert traced == baseline
        assert len(tracer) > 0  # the run really was being traced
