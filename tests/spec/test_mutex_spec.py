"""Unit tests for the mutual-exclusion specification checker."""

import pytest

from repro.sim import ops
from repro.sim.trace import EventKind, Trace, TraceEvent
from repro.spec import (
    check_mutex,
    check_mutual_exclusion,
    check_starvation,
    max_bypass,
    time_complexity,
    unserved_intervals,
)


def lbl(seq, pid, kind, t, value=None):
    return TraceEvent(
        seq=seq, pid=pid, kind=EventKind.LABEL, issued=t, completed=t,
        label=kind, value=value,
    )


def build(events):
    tr = Trace(delta=1.0)
    for i, (pid, kind, t) in enumerate(sorted(events, key=lambda e: e[2])):
        tr.append(lbl(i, pid, kind, t))
    return tr


def session(pid, entry_start, cs_enter, cs_exit, exit_done=None):
    evs = [
        (pid, ops.ENTRY_START, entry_start),
        (pid, ops.CS_ENTER, cs_enter),
        (pid, ops.CS_EXIT, cs_exit),
    ]
    if exit_done is not None:
        evs.append((pid, ops.EXIT_DONE, exit_done))
    return evs


class TestMutualExclusion:
    def test_disjoint_ok(self):
        tr = build(session(0, 0, 1, 2, 2.5) + session(1, 2, 3, 4, 4.5))
        assert check_mutual_exclusion(tr) == []

    def test_overlap_detected(self):
        tr = build(session(0, 0, 1, 3, 3.5) + session(1, 0.5, 2, 4, 4.5))
        overlaps = check_mutual_exclusion(tr)
        assert len(overlaps) == 1
        a, b = overlaps[0]
        assert {a.pid, b.pid} == {0, 1}

    def test_handover_at_same_instant_not_overlap(self):
        tr = build(session(0, 0, 1, 2, 2.1) + session(1, 0.5, 2, 3, 3.1))
        assert check_mutual_exclusion(tr) == []

    def test_three_way_overlap_counts_pairs(self):
        evs = []
        for pid in range(3):
            evs += session(pid, 0, 1 + 0.1 * pid, 5, 5.5)
        tr = build(evs)
        assert len(check_mutual_exclusion(tr)) == 3  # all pairs


class TestBypass:
    def test_no_bypass(self):
        tr = build(session(0, 0, 1, 2, 2.5))
        worst, per_pid = max_bypass(tr)
        assert worst == 0

    def test_bypass_counted(self):
        # pid 0 waits from t=0 to t=10; pid 1 enters twice inside that span.
        evs = session(0, 0, 10, 11, 11.5)
        evs += session(1, 0.5, 1, 2, 2.5) + session(1, 3, 4, 5, 5.5)
        tr = build(evs)
        worst, per_pid = max_bypass(tr)
        assert worst == 2
        assert per_pid[0] == 2


class TestStarvation:
    def test_completed_sessions_not_starved(self):
        tr = build(session(0, 0, 1, 2, 2.5))
        starved, _ = check_starvation(tr)
        assert starved == []

    def test_truncated_wait_with_many_bypasses_is_starvation(self):
        evs = [(0, ops.ENTRY_START, 0.0)]
        t = 0.5
        for k in range(12):  # far above the default bound for 2 pids
            evs += session(1, t, t + 0.1, t + 0.2, t + 0.3)
            t += 0.5
        tr = build(evs)
        starved, worst = check_starvation(tr)
        assert starved == [0]
        assert worst >= 12

    def test_bound_override(self):
        evs = [(0, ops.ENTRY_START, 0.0)]
        t = 0.5
        for k in range(4):
            evs += session(1, t, t + 0.1, t + 0.2, t + 0.3)
            t += 0.5
        tr = build(evs)
        starved, _ = check_starvation(tr, bypass_bound=2)
        assert starved == [0]
        starved2, _ = check_starvation(tr, bypass_bound=100)
        assert starved2 == []


class TestTimeComplexity:
    def test_no_entries_zero(self):
        tr = build([(0, ops.CS_ENTER, 1.0), (0, ops.CS_EXIT, 2.0)])
        assert time_complexity(tr) == 0.0

    def test_simple_wait(self):
        # pid 0 in entry 0..3 with no CS at all until it enters.
        tr = build(session(0, 0.0, 3.0, 4.0, 4.5))
        assert time_complexity(tr) == pytest.approx(3.0)

    def test_wait_covered_by_other_cs(self):
        # pid 0 waits 0..5 but pid 1 is in CS 1..4: unserved only 0..1 and 4..5.
        evs = session(0, 0.0, 5.0, 6.0, 6.5) + session(1, 0.8, 1.0, 4.0, 4.2)
        tr = build(evs)
        assert time_complexity(tr) == pytest.approx(1.0)

    def test_since_window(self):
        evs = session(0, 0.0, 4.0, 5.0, 5.5) + session(1, 6.0, 6.5, 7.0, 7.5)
        tr = build(evs)
        assert time_complexity(tr, since=5.8) == pytest.approx(0.5)

    def test_truncated_entry_counts_to_end(self):
        tr = build([(0, ops.ENTRY_START, 1.0), (1, ops.CS_ENTER, 9.0), (1, ops.CS_EXIT, 10.0)])
        # pid0 in entry 1..10 (end), CS covers 9..10: unserved 1..9.
        assert time_complexity(tr) == pytest.approx(8.0)

    def test_unserved_intervals_merge(self):
        evs = session(0, 0.0, 2.0, 3.0, 3.5) + session(1, 2.5, 4.0, 5.0, 5.5)
        tr = build(evs)
        ivs = unserved_intervals(tr)
        # 0..2 (pid0 waiting, nobody in CS) then 3..4 (pid1 waiting).
        assert ivs == [
            (pytest.approx(0.0), pytest.approx(2.0)),
            (pytest.approx(3.0), pytest.approx(4.0)),
        ]


class TestCheckMutex:
    def test_clean_verdict(self):
        tr = build(session(0, 0, 1, 2, 2.5) + session(1, 2, 3, 4, 4.5))
        v = check_mutex(tr)
        assert v.ok and v.safe
        assert v.violations == []

    def test_overlap_verdict(self):
        tr = build(session(0, 0, 1, 3, 3.5) + session(1, 0.5, 2, 4, 4.5))
        v = check_mutex(tr)
        assert not v.safe
        assert any("mutual exclusion" in m for m in v.violations)

    def test_time_complexity_included(self):
        tr = build(session(0, 0.0, 3.0, 4.0, 4.5))
        v = check_mutex(tr)
        assert v.time_complexity == pytest.approx(3.0)
