"""Unit tests for the consensus specification checker."""

import pytest

from repro.sim import ConstantTiming, CrashSchedule, Engine, label, ops, read
from repro.sim.registers import Register
from repro.spec import check_consensus

X = Register("x", 0)


def deciding(pid, value):
    yield read(X)
    yield label(ops.DECIDED, value)
    return value


def silent(pid):
    yield read(X)
    return None  # finished but never decided — instrumentation bug shape


def run(programs, crashes=None):
    eng = Engine(delta=1.0, timing=ConstantTiming(0.5), crashes=crashes)
    for pid, prog in enumerate(programs):
        eng.spawn(prog, pid=pid)
    return eng.run()


def test_agreeing_run_ok():
    res = run([deciding(0, 1), deciding(1, 1)])
    v = check_consensus(res, {0: 1, 1: 1})
    assert v.ok and v.safe
    assert v.decisions == {0: 1, 1: 1}


def test_disagreement_detected():
    res = run([deciding(0, 0), deciding(1, 1)])
    v = check_consensus(res, {0: 0, 1: 1})
    assert not v.agreed
    assert not v.safe
    assert any("agreement" in msg for msg in v.violations)


def test_invalid_value_detected():
    res = run([deciding(0, 7)])
    v = check_consensus(res, {0: 1})
    assert not v.valid
    assert any("validity" in msg for msg in v.violations)


def test_missing_decision_is_termination_violation():
    def undecided(pid):
        yield read(X)

    res = run([deciding(0, 1), undecided(1)])
    v = check_consensus(res, {0: 1, 1: 1})
    assert v.safe and not v.terminated
    assert any("termination" in msg for msg in v.violations)


def test_termination_not_required_mode():
    def undecided(pid):
        yield read(X)

    res = run([deciding(0, 1), undecided(1)])
    v = check_consensus(res, {0: 1, 1: 1}, require_termination=False)
    assert v.safe
    assert not v.terminated
    assert v.violations == []


def test_crashed_process_not_required_to_decide():
    res = run(
        [deciding(0, 1), deciding(1, 1)],
        crashes=CrashSchedule(after_steps={1: 0}),
    )
    v = check_consensus(res, {0: 1, 1: 1})
    assert v.ok


def test_expected_decided_override():
    def undecided(pid):
        yield read(X)

    res = run([deciding(0, 1), undecided(1)])
    v = check_consensus(res, {0: 1, 1: 1}, expected_decided=[0])
    assert v.ok


def test_label_and_return_mismatch_raises():
    def lying(pid):
        yield read(X)
        yield label(ops.DECIDED, 1)
        return 0

    res = run([lying(0)])
    with pytest.raises(ValueError, match="inconsistent"):
        check_consensus(res, {0: 1})


def test_safe_property_combines_validity_and_agreement():
    res = run([deciding(0, 7), deciding(1, 7)])
    v = check_consensus(res, {0: 1, 1: 1})
    assert v.agreed and not v.valid and not v.safe
