"""Unit tests for extracting object histories from traces."""

import pytest

from repro.sim.trace import EventKind, Trace, TraceEvent
from repro.spec.histories import INVOKE, RESPOND, history_from_trace


def lbl(seq, pid, kind, t, payload):
    return TraceEvent(
        seq=seq, pid=pid, kind=EventKind.LABEL, issued=t, completed=t,
        label=kind, value=payload,
    )


def test_invoke_respond_pairing():
    tr = Trace(delta=1.0)
    tr.append(lbl(0, 0, INVOKE, 1.0, ("q", "enqueue", (5,))))
    tr.append(lbl(1, 0, RESPOND, 2.0, ("q", None)))
    h = history_from_trace(tr)
    assert len(h) == 1
    (operation,) = h
    assert operation.name == "enqueue"
    assert operation.args == (5,)
    assert operation.result is None
    assert operation.invoked == 1.0 and operation.responded == 2.0


def test_interleaved_processes():
    tr = Trace(delta=1.0)
    tr.append(lbl(0, 0, INVOKE, 1.0, ("q", "enqueue", (5,))))
    tr.append(lbl(1, 1, INVOKE, 1.5, ("q", "dequeue", ())))
    tr.append(lbl(2, 1, RESPOND, 2.0, ("q", 5)))
    tr.append(lbl(3, 0, RESPOND, 2.5, ("q", None)))
    h = history_from_trace(tr)
    assert len(h) == 2
    assert {o.pid for o in h} == {0, 1}


def test_object_filter():
    tr = Trace(delta=1.0)
    tr.append(lbl(0, 0, INVOKE, 1.0, ("a", "read", ())))
    tr.append(lbl(1, 0, RESPOND, 2.0, ("a", 0)))
    tr.append(lbl(2, 0, INVOKE, 3.0, ("b", "read", ())))
    tr.append(lbl(3, 0, RESPOND, 4.0, ("b", 1)))
    h = history_from_trace(tr, obj="b")
    assert len(h) == 1
    assert h.operations[0].result == 1


def test_unanswered_invocation_dropped():
    tr = Trace(delta=1.0)
    tr.append(lbl(0, 0, INVOKE, 1.0, ("q", "enqueue", (5,))))
    h = history_from_trace(tr)
    assert len(h) == 0


def test_double_invoke_rejected():
    tr = Trace(delta=1.0)
    tr.append(lbl(0, 0, INVOKE, 1.0, ("q", "enqueue", (5,))))
    tr.append(lbl(1, 0, INVOKE, 2.0, ("q", "enqueue", (6,))))
    with pytest.raises(ValueError, match="pending"):
        history_from_trace(tr)


def test_respond_without_invoke_rejected():
    tr = Trace(delta=1.0)
    tr.append(lbl(0, 0, RESPOND, 1.0, ("q", 5)))
    with pytest.raises(ValueError, match="without"):
        history_from_trace(tr)


def test_sorted_by_invocation():
    tr = Trace(delta=1.0)
    tr.append(lbl(0, 1, INVOKE, 1.0, ("q", "a", ())))
    tr.append(lbl(1, 0, INVOKE, 2.0, ("q", "b", ())))
    tr.append(lbl(2, 1, RESPOND, 3.0, ("q", 0)))
    tr.append(lbl(3, 0, RESPOND, 4.0, ("q", 0)))
    h = history_from_trace(tr)
    assert [o.name for o in h.sorted_by_invocation()] == ["a", "b"]
