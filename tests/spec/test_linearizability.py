"""Unit tests for histories and the linearizability checker."""

import pytest

from repro.spec.histories import History, Operation
from repro.spec.linearizability import (
    ConsensusModel,
    CounterModel,
    QueueModel,
    RegisterModel,
    StackModel,
    TestAndSetModel,
    check_linearizability,
)


def op(pid, name, args, result, invoked, responded):
    return Operation(pid, name, tuple(args), result, invoked, responded)


def hist(*operations):
    h = History()
    h.operations.extend(operations)
    return h


class TestHistory:
    def test_response_before_invocation_rejected(self):
        with pytest.raises(ValueError):
            op(0, "read", (), 0, 5.0, 4.0)

    def test_precedes(self):
        a = op(0, "w", (1,), None, 0, 1)
        b = op(1, "r", (), 1, 2, 3)
        assert a.precedes(b)
        assert not b.precedes(a)

    def test_is_sequential(self):
        assert hist(op(0, "a", (), 0, 0, 1), op(1, "b", (), 0, 2, 3)).is_sequential()
        assert not hist(op(0, "a", (), 0, 0, 2), op(1, "b", (), 0, 1, 3)).is_sequential()

    def test_per_pid_well_formed(self):
        good = hist(op(0, "a", (), 0, 0, 1), op(0, "b", (), 0, 2, 3))
        assert good.per_pid_well_formed()
        bad = hist(op(0, "a", (), 0, 0, 2), op(0, "b", (), 0, 1, 3))
        assert not bad.per_pid_well_formed()


class TestRegister:
    def test_sequential_read_write(self):
        h = hist(
            op(0, "write", (5,), None, 0, 1),
            op(1, "read", (), 5, 2, 3),
        )
        assert check_linearizability(h, RegisterModel()).ok

    def test_stale_read_after_write_not_linearizable(self):
        h = hist(
            op(0, "write", (5,), None, 0, 1),
            op(1, "read", (), 0, 2, 3),  # reads initial AFTER the write finished
        )
        assert not check_linearizability(h, RegisterModel()).ok

    def test_concurrent_read_may_see_either(self):
        h = hist(
            op(0, "write", (5,), None, 0, 4),
            op(1, "read", (), 0, 1, 2),  # overlaps the write: 0 is fine
        )
        assert check_linearizability(h, RegisterModel()).ok


class TestQueue:
    def test_fifo_respected(self):
        h = hist(
            op(0, "enqueue", (1,), None, 0, 1),
            op(0, "enqueue", (2,), None, 2, 3),
            op(1, "dequeue", (), 1, 4, 5),
            op(1, "dequeue", (), 2, 6, 7),
        )
        assert check_linearizability(h, QueueModel()).ok

    def test_lifo_rejected_for_queue(self):
        h = hist(
            op(0, "enqueue", (1,), None, 0, 1),
            op(0, "enqueue", (2,), None, 2, 3),
            op(1, "dequeue", (), 2, 4, 5),  # should have been 1
            op(1, "dequeue", (), 1, 6, 7),
        )
        assert not check_linearizability(h, QueueModel()).ok

    def test_concurrent_enqueues_any_order(self):
        h = hist(
            op(0, "enqueue", (1,), None, 0, 3),
            op(1, "enqueue", (2,), None, 0, 3),
            op(2, "dequeue", (), 2, 4, 5),
            op(2, "dequeue", (), 1, 6, 7),
        )
        assert check_linearizability(h, QueueModel()).ok

    def test_empty_dequeue(self):
        h = hist(op(0, "dequeue", (), None, 0, 1))
        assert check_linearizability(h, QueueModel()).ok


class TestStack:
    def test_lifo_respected(self):
        h = hist(
            op(0, "push", (1,), None, 0, 1),
            op(0, "push", (2,), None, 2, 3),
            op(1, "pop", (), 2, 4, 5),
            op(1, "pop", (), 1, 6, 7),
        )
        assert check_linearizability(h, StackModel()).ok

    def test_fifo_rejected_for_stack(self):
        h = hist(
            op(0, "push", (1,), None, 0, 1),
            op(0, "push", (2,), None, 2, 3),
            op(1, "pop", (), 1, 4, 5),
            op(1, "pop", (), 2, 6, 7),
        )
        assert not check_linearizability(h, StackModel()).ok


class TestTas:
    def test_single_winner_ok(self):
        h = hist(
            op(0, "test_and_set", (), 0, 0, 3),
            op(1, "test_and_set", (), 1, 1, 4),
        )
        assert check_linearizability(h, TestAndSetModel()).ok

    def test_two_winners_rejected(self):
        h = hist(
            op(0, "test_and_set", (), 0, 0, 1),
            op(1, "test_and_set", (), 0, 2, 3),
        )
        assert not check_linearizability(h, TestAndSetModel()).ok

    def test_loser_before_winner_rejected(self):
        # pid0 got 1 (lost) strictly before pid1 even invoked: impossible.
        h = hist(
            op(0, "test_and_set", (), 1, 0, 1),
            op(1, "test_and_set", (), 0, 2, 3),
        )
        assert not check_linearizability(h, TestAndSetModel()).ok


class TestConsensusModel:
    def test_first_propose_wins(self):
        h = hist(
            op(0, "propose", (5,), 5, 0, 1),
            op(1, "propose", (9,), 5, 2, 3),
        )
        assert check_linearizability(h, ConsensusModel()).ok

    def test_conflicting_decisions_rejected(self):
        h = hist(
            op(0, "propose", (5,), 5, 0, 1),
            op(1, "propose", (9,), 9, 2, 3),
        )
        assert not check_linearizability(h, ConsensusModel()).ok


class TestCounter:
    def test_increments_unique(self):
        h = hist(
            op(0, "increment", (), 0, 0, 3),
            op(1, "increment", (), 1, 0, 3),
            op(0, "read", (), 2, 4, 5),
        )
        assert check_linearizability(h, CounterModel()).ok

    def test_duplicate_increment_results_rejected(self):
        h = hist(
            op(0, "increment", (), 0, 0, 1),
            op(1, "increment", (), 0, 2, 3),
        )
        assert not check_linearizability(h, CounterModel()).ok


class TestPending:
    def test_pending_op_may_have_taken_effect(self):
        # pid0's enqueue never responded (crash), but pid1 dequeues its value.
        pending = [op(0, "enqueue", (7,), None, 0, 10)]
        h = hist(op(1, "dequeue", (), 7, 1, 2))
        assert check_linearizability(h, QueueModel(), pending=pending).ok

    def test_pending_op_may_be_dropped(self):
        pending = [op(0, "enqueue", (7,), None, 0, 10)]
        h = hist(op(1, "dequeue", (), None, 1, 2))  # empty queue observed
        assert check_linearizability(h, QueueModel(), pending=pending).ok

    def test_result_from_nowhere_still_rejected(self):
        pending = [op(0, "enqueue", (7,), None, 5, 10)]
        h = hist(op(1, "dequeue", (), 3, 1, 2))  # 3 was never enqueued
        assert not check_linearizability(h, QueueModel(), pending=pending).ok


class TestWitness:
    def test_witness_is_legal_order(self):
        h = hist(
            op(0, "enqueue", (1,), None, 0, 1),
            op(1, "dequeue", (), 1, 2, 3),
        )
        res = check_linearizability(h, QueueModel())
        assert res.ok
        assert [o.name for o in res.witness] == ["enqueue", "dequeue"]

    def test_malformed_history_rejected(self):
        h = hist(
            op(0, "enqueue", (1,), None, 0, 5),
            op(0, "dequeue", (), 1, 1, 2),  # same pid, overlapping
        )
        with pytest.raises(ValueError):
            check_linearizability(h, QueueModel())
