"""Tests for repro artifacts: serialization, replay verification, CLI."""

import dataclasses
import json

import pytest

from repro.chaos.artifact import (
    SCHEMA_VERSION,
    Artifact,
    artifact_from_net,
    artifact_from_sim,
    load_artifact,
    replay,
    save_artifact,
)
from repro.chaos.monitors import ChaosViolation
from repro.chaos.plan import sample_net_campaign, sample_sim_campaign
from repro.chaos.runner import (
    NetParams,
    run_net,
    run_sim_campaign,
    sample_net_workload,
    sim_target,
)


@pytest.fixture(scope="module")
def failing_sim():
    target = sim_target("fischer_n3")
    campaign = sample_sim_campaign("demo-a", pids=target.pids, windows=6)
    report = run_sim_campaign(target, campaign, schedules=20)
    assert not report.ok
    return report.failing


class TestSimArtifact:
    def test_round_trip(self, failing_sim, tmp_path):
        artifact = artifact_from_sim("fischer_n3", failing_sim)
        path = save_artifact(artifact, tmp_path / "a.json")
        assert load_artifact(path) == artifact

    def test_json_shape(self, failing_sim, tmp_path):
        artifact = artifact_from_sim("fischer_n3", failing_sim)
        path = save_artifact(artifact, tmp_path / "a.json")
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA_VERSION
        assert data["substrate"] == "sim"
        assert data["target"] == "fischer_n3"
        assert data["schedule"] == list(failing_sim.schedule)
        assert set(data["violation"]) == {"monitor", "message", "step"}

    def test_replay_reproduces(self, failing_sim, tmp_path):
        artifact = artifact_from_sim("fischer_n3", failing_sim)
        path = save_artifact(artifact, tmp_path / "a.json")
        report = replay(load_artifact(path))
        assert report.ok
        assert report.actual == artifact.violation
        assert "reproduced" in repr(report)

    def test_replay_detects_message_drift(self, failing_sim):
        artifact = artifact_from_sim("fischer_n3", failing_sim)
        tampered = dataclasses.replace(
            artifact,
            violation=dataclasses.replace(artifact.violation,
                                          message="something else"),
        )
        report = replay(tampered)
        assert not report.ok and "drifted" in report.detail

    def test_replay_detects_missing_violation(self, failing_sim):
        artifact = artifact_from_sim("fischer_n3", failing_sim)
        tampered = dataclasses.replace(
            artifact,
            violation=dataclasses.replace(artifact.violation,
                                          monitor="agreement"),
        )
        report = replay(tampered)
        assert not report.ok and "did not fire" in report.detail

    def test_unsupported_schema_rejected(self, failing_sim):
        data = artifact_from_sim("fischer_n3", failing_sim).to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            Artifact.from_dict(data)


class TestNetArtifact:
    def test_round_trip_and_replay_of_synthetic_clean_miss(self, tmp_path):
        # ABD yields no natural violation, so exercise the net artifact
        # path with a real outcome and a synthetic expected violation:
        # replay must report "did not fire" rather than crash.
        params = NetParams()
        campaign = sample_net_campaign("net-art")
        workload = sample_net_workload(campaign, "0", params)
        outcome = run_net(campaign, workload, params=params, run_seed="0")
        assert outcome.ok
        fake = ChaosViolation("linearizability", "synthetic", 3)
        artifact = artifact_from_net(outcome, params, violation=fake)
        path = save_artifact(artifact, tmp_path / "n.json")
        loaded = load_artifact(path)
        assert loaded == artifact
        assert loaded.payload == workload
        assert loaded.net_params == params
        report = replay(loaded)
        assert not report.ok and "did not fire" in report.detail

    def test_provenance_recorded_from_shrink(self, tmp_path):
        from repro.chaos.plan import sample_sim_campaign
        from repro.chaos.runner import run_sim_campaign, sim_target
        from repro.chaos.shrink import shrink_sim

        target = sim_target("fischer_n3")
        campaign = sample_sim_campaign("demo-a", pids=target.pids, windows=6)
        outcome = run_sim_campaign(target, campaign, schedules=20).failing
        shrunk = shrink_sim(target, campaign, outcome.schedule,
                            monitor="mutual_exclusion")
        artifact = artifact_from_sim("fischer_n3", outcome, shrunk=shrunk)
        data = json.loads(save_artifact(artifact,
                                        tmp_path / "p.json").read_text())
        prov = data["provenance"]
        assert prov["original_fault_count"] == 6
        assert prov["shrunk_fault_count"] <= 1
        assert prov["shrunk_payload_size"] <= prov["original_payload_size"]
        assert prov["shrink_executions"] > 0
