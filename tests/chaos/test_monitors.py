"""Tests for the online chaos monitors."""

import pytest

from repro.chaos.monitors import (
    ConvergenceMonitor,
    SafetyMonitor,
    TraceResilienceMonitor,
    default_monitors,
)
from repro.chaos.plan import Campaign, MemCorruption
from repro.sim import ops
from repro.sim.failures import failure_window
from repro.sim.registers import Register
from repro.sim.trace import EventKind, Trace, TraceEvent
from repro.verify.properties import InvariantProperty
from repro.verify.sandbox import Sandbox

X = Register("mon", 0)


def _writer(pid):
    yield ops.write(X, pid + 1)


def _spinner(pid):
    while True:
        yield ops.read(X)


class TestSafetyMonitor:
    def test_fires_once_with_property_name(self):
        prop = InvariantProperty(lambda sb: sb.memory.peek(X) == 0,
                                 name="x-zero", message="x moved")
        monitor = SafetyMonitor(prop)
        sandbox = Sandbox({0: _writer}, max_ops=5)
        assert monitor.name == "x-zero"
        assert monitor.on_step(sandbox, 0, frozenset()) is None
        sandbox.step(0)
        assert monitor.on_step(sandbox, 1, frozenset()) == "x moved"
        # the broken state persists but the monitor stays quiet
        assert monitor.on_step(sandbox, 2, frozenset()) is None

    def test_reset_rearms(self):
        prop = InvariantProperty(lambda sb: sb.memory.peek(X) == 0,
                                 name="x-zero", message="x moved")
        monitor = SafetyMonitor(prop)
        sandbox = Sandbox({0: _writer}, max_ops=5)
        sandbox.step(0)
        assert monitor.on_step(sandbox, 1, frozenset()) is not None
        monitor.reset()
        assert monitor.on_step(sandbox, 1, frozenset()) is not None


class TestConvergenceMonitor:
    def _campaign(self, **kwargs):
        return Campaign(substrate="sim", seed="m", **kwargs)

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(self._campaign(), budget=0)

    def test_quiet_before_budget_elapses(self):
        campaign = self._campaign(windows=(failure_window(0.0, 10.0),))
        monitor = ConvergenceMonitor(campaign, budget=5)
        sandbox = Sandbox({0: _spinner}, max_ops=100)
        assert monitor.on_step(sandbox, 14, frozenset()) is None

    def test_fires_on_laggards_after_quiet_plus_budget(self):
        campaign = self._campaign(windows=(failure_window(0.0, 10.0),))
        monitor = ConvergenceMonitor(campaign, budget=5)
        sandbox = Sandbox({0: _spinner}, max_ops=100)
        message = monitor.on_step(sandbox, 15, frozenset())
        assert message is not None and "[0]" in message
        assert monitor.on_step(sandbox, 16, frozenset()) is None  # once

    def test_halted_pids_are_not_laggards(self):
        campaign = self._campaign(windows=(failure_window(0.0, 10.0),))
        monitor = ConvergenceMonitor(campaign, budget=5)
        sandbox = Sandbox({0: _spinner}, max_ops=100)
        assert monitor.on_step(sandbox, 50, frozenset({0})) is None

    def test_finalize_flags_wedged_only_under_structural_faults(self):
        sandbox = Sandbox({0: _spinner}, max_ops=3)
        for _ in range(3):
            sandbox.step(0)
        assert sandbox.suspended() == [0]
        # pure timing windows: suspension is a cutoff, not a verdict
        windows_only = ConvergenceMonitor(
            self._campaign(windows=(failure_window(0.0, 1.0),)), budget=500
        )
        assert windows_only.finalize(sandbox, 3, frozenset()) is None
        # a crash in the campaign makes the same suspension evidence
        structural = ConvergenceMonitor(
            self._campaign(crash_after=((1, 0),)), budget=500
        )
        assert structural.finalize(sandbox, 3, frozenset()) is not None
        corrupting = ConvergenceMonitor(
            self._campaign(corruptions=(MemCorruption(at=0.0, register="x"),)),
            budget=500,
        )
        corrupting.reset()
        assert corrupting.finalize(sandbox, 3, frozenset()) is not None


def _lbl(seq, pid, kind, t):
    return TraceEvent(seq=seq, pid=pid, kind=EventKind.LABEL, issued=t,
                      completed=t, label=kind)


def _session(seq0, pid, es, ce, cx, xd):
    return [
        _lbl(seq0, pid, ops.ENTRY_START, es),
        _lbl(seq0 + 1, pid, ops.CS_ENTER, ce),
        _lbl(seq0 + 2, pid, ops.CS_EXIT, cx),
        _lbl(seq0 + 3, pid, ops.EXIT_DONE, xd),
    ]


class TestTraceResilienceMonitor:
    def _trace(self):
        trace = Trace(delta=1.0)
        for event in _session(0, 0, 0.0, 0.5, 1.0, 1.2):
            trace.append(event)
        return trace

    def test_clean_trace_passes_and_stores_report(self):
        campaign = Campaign(substrate="sim", seed="m")
        monitor = TraceResilienceMonitor(campaign, psi_deltas=2.0)
        assert monitor.check_trace(self._trace()) is None
        assert monitor.report is not None and monitor.report.resilient

    def test_campaign_declared_failure_end_overrides_trace(self):
        # The campaign says faults last until t=10 but the trace ends at
        # 1.2: no failure-free suffix exists, so convergence is uncertifiable.
        campaign = Campaign(substrate="sim", seed="m",
                            windows=(failure_window(0.0, 10.0),))
        monitor = TraceResilienceMonitor(campaign, psi_deltas=2.0)
        message = monitor.check_trace(self._trace())
        assert message is not None
        assert not monitor.report.resilient

    def test_reset_clears_report(self):
        campaign = Campaign(substrate="sim", seed="m")
        monitor = TraceResilienceMonitor(campaign, psi_deltas=2.0)
        monitor.check_trace(self._trace())
        monitor.reset()
        assert monitor.report is None


class TestDefaultMonitors:
    def test_composition(self):
        prop = InvariantProperty(lambda sb: True, name="p", message="m")
        monitors = default_monitors([prop], Campaign(substrate="sim", seed="m"))
        names = [m.name for m in monitors]
        assert names == ["p", "convergence"]
