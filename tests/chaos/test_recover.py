"""Recover campaigns end-to-end: corruption, restarts, convergence verdicts."""

import dataclasses

import pytest

from repro.chaos.artifact import (
    Artifact,
    artifact_from_sim_verdict,
    load_artifact,
    replay,
    save_artifact,
)
from repro.chaos.monitors import StabilizationMonitor
from repro.chaos.plan import (
    Campaign,
    MemCorruption,
    campaign_from_dict,
    campaign_to_dict,
    sample_recover_campaign,
)
from repro.chaos.runner import (
    STABILIZATION_WINDOW,
    run_sim,
    run_sim_campaign,
    sim_target,
)
from repro.chaos.shrink import _SIM_FAULT_FIELDS
from repro.sim import ops
from repro.sim.registers import Register
from repro.verify.properties import InvariantProperty
from repro.verify.sandbox import Sandbox


class TestEagerCorruptionValidation:
    """A typo'd register name must fail loudly, not silently no-op."""

    def test_unknown_register_raises_up_front(self):
        target = sim_target("dg_mutex_n3")
        campaign = Campaign(
            substrate="sim", seed="typo",
            corruptions=(MemCorruption(at=1.0, register="S9"),),
        )
        with pytest.raises(ValueError, match="unknown register 'S9'"):
            run_sim(target, campaign, run_seed="0")

    def test_message_lists_the_known_registers(self):
        target = sim_target("dg_mutex_n3")
        campaign = Campaign(
            substrate="sim", seed="typo",
            corruptions=(MemCorruption(at=1.0, register="x"),),
        )
        with pytest.raises(ValueError, match=r"\['S0', 'S1', 'S2'\]"):
            run_sim(target, campaign, run_seed="0")

    def test_golab_declares_no_corruptible_registers(self):
        # Scrambling the persistent decision record forges a decision —
        # outside the crash-recovery contract, so every corruption is
        # rejected for this target.
        target = sim_target("golab_consensus_n3")
        assert target.corruptible == ()
        campaign = Campaign(
            substrate="sim", seed="forge",
            corruptions=(MemCorruption(at=1.0, register="D"),),
        )
        with pytest.raises(ValueError, match="unknown register"):
            run_sim(target, campaign, run_seed="0")


class TestRecoverCampaignPlan:
    def test_sample_round_trips_through_json_dict(self):
        c = sample_recover_campaign(
            "rt", pids=(0, 1, 2), corruption_registers=("S0", "S1", "S2")
        )
        assert campaign_from_dict(campaign_to_dict(c)) == c

    def test_every_crash_has_a_later_restart(self):
        for seed in range(8):
            c = sample_recover_campaign(
                seed, pids=(0, 1, 2), corruption_registers=("S0",)
            )
            recover = dict(c.recover_at)
            for pid, when in c.crash_at:
                assert recover[pid] > when

    def test_sampler_validation(self):
        with pytest.raises(ValueError, match="crash_prob"):
            sample_recover_campaign("s", pids=(0,), crash_prob=2.0)
        with pytest.raises(ValueError, match="corruptions"):
            sample_recover_campaign("s", pids=(0,), corruptions=-1)

    def test_orphan_recover_entry_is_a_legal_noop(self):
        # The shrinker may drop a crash and keep its restart; the run
        # must treat the orphan as a no-op, not an error.
        target = sim_target("fischer_n3")
        campaign = Campaign(
            substrate="sim", seed="orphan", recover_at=((0, 5.0),)
        )
        outcome = run_sim(target, campaign, run_seed="0")
        assert outcome.ok and outcome.done

    def test_shrinker_treats_recover_entries_as_fault_content(self):
        assert "recover_at" in _SIM_FAULT_FIELDS
        assert "crash_at" in _SIM_FAULT_FIELDS


_MON = Register("stab_mon", 0)


def _writer(pid):
    yield ops.write(_MON, pid + 1)


class TestStabilizationMonitorUnit:
    def _monitor(self, window=10, quiet=0.0):
        prop = InvariantProperty(
            lambda sb: sb.memory.peek(_MON) == 0,
            name="x-zero", message="x moved",
        )
        campaign = Campaign(substrate="sim", seed="m",
                            corruptions=(MemCorruption(at=quiet, register="x"),))
        return StabilizationMonitor([prop], campaign, window=window)

    def test_window_validated(self):
        with pytest.raises(ValueError, match="window"):
            self._monitor(window=0)

    def test_tolerates_violations_inside_the_window(self):
        monitor = self._monitor(window=10, quiet=2.0)
        sandbox = Sandbox({0: _writer}, max_ops=5)
        sandbox.step(0)  # breaks the invariant
        assert monitor.on_step(sandbox, 5, frozenset()) is None
        assert monitor.on_step(sandbox, 11, frozenset()) is None
        assert monitor._tolerated == 2

    def test_fires_once_after_the_deadline(self):
        monitor = self._monitor(window=10, quiet=2.0)
        sandbox = Sandbox({0: _writer}, max_ops=5)
        sandbox.step(0)
        message = monitor.on_step(sandbox, 12, frozenset())
        assert message is not None and "window closed at 12" in message
        assert monitor.on_step(sandbox, 13, frozenset()) is None

    def test_verdict_on_converged_completion(self):
        monitor = self._monitor(window=10, quiet=2.0)
        sandbox = Sandbox({0: _writer}, max_ops=5)
        sandbox.step(0)
        monitor.on_step(sandbox, 5, frozenset())
        assert sandbox.all_quiescent()
        assert monitor.finalize(sandbox, 6, frozenset()) is None
        assert monitor.verdict is not None
        assert monitor.verdict.monitor == "stabilization"
        assert "tolerated 1 violating state(s)" in monitor.verdict.message

    def test_no_verdict_while_unfinished_pids_remain(self):
        def spinner(pid):
            while True:
                yield ops.read(_MON)

        monitor = self._monitor()
        sandbox = Sandbox({0: spinner}, max_ops=50)
        assert monitor.finalize(sandbox, 3, frozenset()) is None
        assert monitor.verdict is None
        # ...but a crashed pid is not "unfinished"
        monitor.reset()
        assert monitor.finalize(sandbox, 3, frozenset({0})) is None
        assert monitor.verdict is not None


class TestRecoverRuns:
    def test_dg_campaign_converges_with_verdicts(self):
        target = sim_target("dg_mutex_n3")
        campaign = sample_recover_campaign(
            "conv-1", pids=target.pids, corruption_registers=target.corruptible
        )
        assert campaign.fault_count > 0
        report = run_sim_campaign(target, campaign, schedules=3)
        assert report.ok
        assert report.converged
        assert report.verdicts == report.schedules_run == 3
        assert report.first_verdict.monitor == "stabilization"

    def test_replay_reproduces_the_verdict(self):
        target = sim_target("dg_mutex_n3")
        campaign = sample_recover_campaign(
            "replay-1", pids=target.pids,
            corruption_registers=target.corruptible,
        )
        generated = run_sim(target, campaign, run_seed="0")
        assert generated.verdicts, "expected a stabilization verdict"
        replayed = run_sim(target, campaign, schedule=generated.schedule)
        assert replayed.schedule == generated.schedule
        assert replayed.violations == generated.violations
        assert replayed.verdicts == generated.verdicts
        assert replayed.steps == generated.steps

    def test_golab_survives_crash_restart(self):
        target = sim_target("golab_consensus_n3")
        campaign = Campaign(
            substrate="sim", seed="golab-cr",
            crash_at=((0, 2.0), (2, 4.0)),
            recover_at=((0, 9.0), (2, 30.0)),
        )
        report = run_sim_campaign(target, campaign, schedules=3)
        assert report.ok and report.converged

    def test_fischer_contrast_fails_to_converge(self):
        # The same fault class against the non-stabilizing lock: junk in
        # Fischer's register wedges every process on `await x = FREE`
        # forever, and the convergence monitor calls it.
        target = sim_target("fischer_n3")
        campaign = Campaign(
            substrate="sim", seed="wedge",
            corruptions=(MemCorruption(at=0.0, register="x", value=99),),
        )
        outcome = run_sim(target, campaign, run_seed="0")
        assert not outcome.ok
        assert outcome.find("convergence") is not None
        assert not outcome.done

    def test_dg_drains_the_same_fault_class(self):
        # ...while the stabilizing ring drains comparable junk and earns
        # its verdict: the archetype contrast in one pair of tests.
        target = sim_target("dg_mutex_n3")
        campaign = Campaign(
            substrate="sim", seed="drain",
            corruptions=tuple(
                MemCorruption(at=0.0, register=f"S{i}", value=99 + i)
                for i in range(3)
            ),
        )
        outcome = run_sim(target, campaign, run_seed="0")
        assert outcome.ok and outcome.done
        assert outcome.verdicts and outcome.verdicts[0].monitor == "stabilization"


class TestStabilizationArtifact:
    @pytest.fixture(scope="class")
    def verdict_outcome(self):
        target = sim_target("dg_mutex_n3")
        campaign = sample_recover_campaign(
            "art-1", pids=target.pids, corruption_registers=target.corruptible
        )
        outcome = run_sim(target, campaign, run_seed="0")
        assert outcome.ok and outcome.verdicts
        return outcome

    def test_round_trip_preserves_kind(self, verdict_outcome, tmp_path):
        artifact = artifact_from_sim_verdict("dg_mutex_n3", verdict_outcome)
        assert artifact.kind == "stabilization"
        path = save_artifact(artifact, tmp_path / "s.json")
        loaded = load_artifact(path)
        assert loaded == artifact and loaded.kind == "stabilization"

    def test_replay_reproduces_verdict(self, verdict_outcome, tmp_path):
        artifact = artifact_from_sim_verdict("dg_mutex_n3", verdict_outcome)
        report = replay(artifact)
        assert report.ok, report.detail
        assert "zero violations" in report.detail

    def test_replay_detects_verdict_drift(self, verdict_outcome):
        artifact = artifact_from_sim_verdict("dg_mutex_n3", verdict_outcome)
        tampered = dataclasses.replace(
            artifact,
            violation=dataclasses.replace(artifact.violation,
                                          message="something else"),
        )
        report = replay(tampered)
        assert not report.ok and "drift" in report.detail

    def test_requires_a_verdict(self):
        target = sim_target("dg_mutex_n3")
        clean = run_sim(target, Campaign(substrate="sim", seed="calm"),
                        run_seed="0")
        assert clean.ok
        clean.verdicts = []  # as if the run had not converged
        with pytest.raises(ValueError, match="verdict"):
            artifact_from_sim_verdict("dg_mutex_n3", clean)

    def test_kind_validated(self, verdict_outcome):
        artifact = artifact_from_sim_verdict("dg_mutex_n3", verdict_outcome)
        with pytest.raises(ValueError, match="kind"):
            dataclasses.replace(artifact, kind="celebration")
        with pytest.raises(ValueError, match="sim"):
            dataclasses.replace(artifact, substrate="net")
