"""Tests for the unified campaign algebra and its serialization."""

import math

import pytest

from repro.chaos.plan import (
    Campaign,
    MemCorruption,
    campaign_from_dict,
    campaign_to_dict,
    sample_net_campaign,
    sample_sim_campaign,
)
from repro.net.faults import DelaySpike, MessageLoss, Partition
from repro.sim.failures import failure_window
from repro.sim.timing import ConstantTiming


class TestCampaignValidation:
    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError):
            Campaign(substrate="quantum", seed="s")

    def test_negative_crash_point_rejected(self):
        with pytest.raises(ValueError):
            Campaign(substrate="sim", seed="s", crash_at=((0, -1.0),))

    def test_nan_crash_point_rejected(self):
        with pytest.raises(ValueError):
            Campaign(substrate="sim", seed="s", crash_at=((0, float("nan")),))

    def test_duplicate_crash_pid_rejected(self):
        with pytest.raises(ValueError):
            Campaign(
                substrate="sim", seed="s",
                crash_at=((0, 1.0),), crash_after=((0, 5),),
            )

    def test_corruption_validation(self):
        with pytest.raises(ValueError):
            MemCorruption(at=-1.0, register="x")
        with pytest.raises(ValueError):
            MemCorruption(at=float("nan"), register="x")


class TestCampaignAccessors:
    def test_fault_count_sums_every_component(self):
        c = Campaign(
            substrate="net",
            seed="s",
            crash_at=((3, 1.0),),
            losses=(MessageLoss(rate=0.5, start=0.0, end=1.0),),
            spikes=(DelaySpike(start=0.0, end=1.0, stretch=2.0),),
            partitions=(Partition(start=0.0, end=1.0, groups=((0,), (1,))),),
        )
        assert c.fault_count == 4

    def test_last_disruption_end_ignores_crashes_and_inf(self):
        c = Campaign(
            substrate="sim",
            seed="s",
            windows=(failure_window(0.0, 7.0), failure_window(1.0, math.inf)),
            crash_at=((0, 99.0),),
            corruptions=(MemCorruption(at=3.0, register="x"),),
        )
        assert c.last_disruption_end == 7.0

    def test_last_disruption_end_empty(self):
        assert Campaign(substrate="sim", seed="s").last_disruption_end == 0.0

    def test_replace_returns_modified_copy(self):
        c = Campaign(substrate="sim", seed="s",
                     windows=(failure_window(0.0, 1.0),))
        c2 = c.replace(windows=())
        assert c.fault_count == 1 and c2.fault_count == 0

    def test_crash_schedule_adapter(self):
        c = Campaign(substrate="sim", seed="s",
                     crash_at=((0, 5.0),), crash_after=((1, 3),))
        cs = c.crash_schedule()
        assert cs.crash_time(0) == 5.0 and cs.crash_step(1) == 3

    def test_net_plan_adapter(self):
        loss = MessageLoss(rate=1.0, start=0.0, end=10.0)
        c = Campaign(substrate="net", seed="s", losses=(loss,))
        assert c.net_plan().losses == (loss,)

    def test_timing_model_adapter_passthrough_without_windows(self):
        base = ConstantTiming(0.5)
        c = Campaign(substrate="sim", seed="s")
        assert c.timing_model(base) is base
        windowed = c.replace(windows=(failure_window(0.0, 1.0, stretch=4.0),))
        assert windowed.timing_model(base) is not base


class TestSerialization:
    def test_sim_round_trip(self):
        c = Campaign(
            substrate="sim",
            seed="rt",
            windows=(
                failure_window(0.0, 5.0, pids=[0, 2], stretch=3.0),
                failure_window(1.0, math.inf),
            ),
            crash_at=((0, 2.5),),
            crash_after=((1, 7),),
            corruptions=(MemCorruption(at=1.5, register="x", value=3),),
        )
        assert campaign_from_dict(campaign_to_dict(c)) == c

    def test_net_round_trip(self):
        c = sample_net_campaign("rt-net", faults=6)
        assert campaign_from_dict(campaign_to_dict(c)) == c

    def test_dict_is_json_safe(self):
        import json

        c = Campaign(substrate="sim", seed="s",
                     windows=(failure_window(0.0, math.inf),))
        data = json.loads(json.dumps(campaign_to_dict(c)))
        assert campaign_from_dict(data) == c


class TestGenerators:
    def test_sim_campaign_deterministic_per_seed(self):
        a = sample_sim_campaign("g1", pids=(0, 1, 2))
        b = sample_sim_campaign("g1", pids=(0, 1, 2))
        c = sample_sim_campaign("g2", pids=(0, 1, 2))
        assert a == b
        assert a != c

    def test_sim_campaign_window_count(self):
        c = sample_sim_campaign("g1", pids=(0, 1), windows=4)
        assert len(c.windows) == 4
        assert c.substrate == "sim"

    def test_crash_prob_one_crashes_everyone(self):
        c = sample_sim_campaign("g1", pids=(0, 1, 2), crash_prob=1.0)
        crashed = {pid for pid, _ in (*c.crash_at, *c.crash_after)}
        assert crashed == {0, 1, 2}

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            sample_sim_campaign("g", pids=(0,), severity=0.0)
        with pytest.raises(ValueError):
            sample_net_campaign("g", severity=-1.0)

    def test_invalid_crash_prob_rejected(self):
        with pytest.raises(ValueError):
            sample_sim_campaign("g", pids=(0,), crash_prob=1.5)

    def test_net_campaign_mixes_fault_kinds(self):
        c = sample_net_campaign("mix", faults=6)
        assert c.substrate == "net"
        assert len(c.losses) == 2 and len(c.spikes) == 2
        assert len(c.partitions) == 2

    def test_net_campaign_deterministic(self):
        assert sample_net_campaign("n") == sample_net_campaign("n")
