"""End-to-end tests for ``python -m repro.chaos`` and the committed artifact."""

import json
from pathlib import Path

import pytest

from repro.chaos.__main__ import main

ARTIFACTS = Path(__file__).parent / "artifacts"


class TestRunCommand:
    def test_expect_violation_with_shrink_and_artifact(self, tmp_path):
        art_dir = tmp_path / "artifacts"
        summary = tmp_path / "summary.json"
        code = main([
            "run", "--substrate", "sim", "--target", "fischer_n3",
            "--seed", "demo-a", "--campaigns", "1", "--schedules", "20",
            "--expect", "violation", "--shrink",
            "--artifact-dir", str(art_dir), "--json", str(summary),
        ])
        assert code == 0
        (artifact_path,) = sorted(art_dir.glob("*.json"))
        assert main(["replay", str(artifact_path)]) == 0
        data = json.loads(summary.read_text())
        assert data["hits"] == 1
        (entry,) = data["campaigns"]
        assert entry["violation"]["monitor"] == "mutual_exclusion"
        assert "shrink" in entry and entry["artifact"] == str(artifact_path)

    def test_expect_clean_fails_on_violation(self, tmp_path):
        code = main([
            "run", "--substrate", "sim", "--target", "fischer_n3",
            "--seed", "demo-a", "--campaigns", "1", "--schedules", "20",
            "--expect", "clean",
        ])
        assert code == 1

    def test_expect_clean_net_campaign(self):
        code = main([
            "run", "--substrate", "net", "--seed", "net-cli",
            "--campaigns", "1", "--schedules", "2", "--expect", "clean",
        ])
        assert code == 0

    def test_expect_violation_fails_when_clean(self):
        code = main([
            "run", "--substrate", "net", "--seed", "net-cli",
            "--campaigns", "1", "--schedules", "1", "--expect", "violation",
        ])
        assert code == 1


class TestShrinkCommand:
    def test_reshrink_artifact_in_place(self, tmp_path):
        art_dir = tmp_path / "artifacts"
        assert main([
            "run", "--substrate", "sim", "--target", "fischer_n3",
            "--seed", "demo-a", "--campaigns", "1", "--schedules", "20",
            "--expect", "violation", "--artifact-dir", str(art_dir),
        ]) == 0
        (artifact_path,) = sorted(art_dir.glob("*.json"))
        out = tmp_path / "shrunk.json"
        assert main(["shrink", str(artifact_path), "-o", str(out)]) == 0
        original = json.loads(artifact_path.read_text())
        shrunk = json.loads(out.read_text())
        assert len(shrunk["schedule"]) <= len(original["schedule"])
        assert len(shrunk["campaign"]["windows"]) <= 1
        assert "re_shrink" in shrunk["provenance"]
        assert main(["replay", str(out)]) == 0


class TestCommittedArtifact:
    """Tier-1 smoke: the archived Fischer violation replays byte-identically."""

    PATH = ARTIFACTS / "fischer_n3_violation.json"

    def test_artifact_is_committed(self):
        assert self.PATH.is_file()

    def test_replays_identically(self):
        assert main(["replay", str(self.PATH)]) == 0

    def test_artifact_content_sanity(self):
        data = json.loads(self.PATH.read_text())
        assert data["substrate"] == "sim"
        assert data["target"] == "fischer_n3"
        assert data["violation"]["monitor"] == "mutual_exclusion"
        # the committed artifact is the *shrunk* counterexample
        assert len(data["schedule"]) <= 10
        assert len(data["campaign"]["windows"]) <= 1


class TestRecoverExpectation:
    def test_expect_recover_converges(self, tmp_path):
        summary = tmp_path / "summary.json"
        code = main([
            "run", "--substrate", "sim", "--target", "dg_mutex_n3",
            "--seed", "recover-cli", "--campaigns", "1", "--schedules", "2",
            "--expect", "recover", "--json", str(summary),
        ])
        assert code == 0
        data = json.loads(summary.read_text())
        (entry,) = data["campaigns"]
        assert entry["converged"] and entry["verdicts"] == 2
        assert entry["first_verdict"]["monitor"] == "stabilization"

    def test_expect_recover_rejects_non_recover_target(self):
        assert main([
            "run", "--substrate", "sim", "--target", "fischer_n3",
            "--seed", "s", "--expect", "recover",
        ]) == 2

    def test_trace_is_sim_only(self, tmp_path):
        assert main([
            "run", "--substrate", "net", "--seed", "s",
            "--trace", str(tmp_path / "t.jsonl"),
        ]) == 2

    def test_trace_and_summary_identical_across_worker_counts(self, tmp_path):
        # The restart-determinism gate: a sharded recover campaign must
        # produce byte-identical evidence to the sequential run.
        outs = {}
        for workers in (1, 4):
            trace = tmp_path / f"trace-w{workers}.jsonl"
            summary = tmp_path / f"summary-w{workers}.json"
            code = main([
                "run", "--substrate", "sim", "--target", "dg_mutex_n3",
                "--seed", "recover-det", "--campaigns", "1",
                "--schedules", "4", "--expect", "recover",
                "--workers", str(workers),
                "--trace", str(trace), "--json", str(summary),
            ])
            assert code == 0
            outs[workers] = (trace.read_bytes(), summary.read_bytes())
        assert outs[1][0] == outs[4][0]
        assert outs[1][1] == outs[4][1]


class TestCommittedRecoverArtifacts:
    """Tier-1 smoke: the archived convergence contrast replays exactly."""

    STABILIZATION = ARTIFACTS / "dg_mutex_n3_stabilization.json"
    NONCONVERGENCE = ARTIFACTS / "fischer_n3_nonconvergence.json"

    def test_artifacts_are_committed(self):
        assert self.STABILIZATION.is_file()
        assert self.NONCONVERGENCE.is_file()

    def test_stabilization_verdict_replays_identically(self):
        assert main(["replay", str(self.STABILIZATION)]) == 0

    def test_nonconvergence_replays_identically(self):
        assert main(["replay", str(self.NONCONVERGENCE)]) == 0

    def test_the_contrast(self):
        # Same fault class, opposite fates: corruption against the
        # stabilizing ring ends in a convergence verdict with zero
        # standing violations; against Fischer it wedges the run and the
        # convergence monitor files a violation.
        stab = json.loads(self.STABILIZATION.read_text())
        assert stab["kind"] == "stabilization"
        assert stab["target"] == "dg_mutex_n3"
        assert stab["violation"]["monitor"] == "stabilization"
        assert "converged" in stab["violation"]["message"]
        assert stab["campaign"]["corruptions"]
        wedge = json.loads(self.NONCONVERGENCE.read_text())
        assert wedge["kind"] == "violation"
        assert wedge["target"] == "fischer_n3"
        assert wedge["violation"]["monitor"] == "convergence"
        assert wedge["campaign"]["corruptions"]
