"""End-to-end tests for ``python -m repro.chaos`` and the committed artifact."""

import json
from pathlib import Path

import pytest

from repro.chaos.__main__ import main

ARTIFACTS = Path(__file__).parent / "artifacts"


class TestRunCommand:
    def test_expect_violation_with_shrink_and_artifact(self, tmp_path):
        art_dir = tmp_path / "artifacts"
        summary = tmp_path / "summary.json"
        code = main([
            "run", "--substrate", "sim", "--target", "fischer_n3",
            "--seed", "demo-a", "--campaigns", "1", "--schedules", "20",
            "--expect", "violation", "--shrink",
            "--artifact-dir", str(art_dir), "--json", str(summary),
        ])
        assert code == 0
        (artifact_path,) = sorted(art_dir.glob("*.json"))
        assert main(["replay", str(artifact_path)]) == 0
        data = json.loads(summary.read_text())
        assert data["hits"] == 1
        (entry,) = data["campaigns"]
        assert entry["violation"]["monitor"] == "mutual_exclusion"
        assert "shrink" in entry and entry["artifact"] == str(artifact_path)

    def test_expect_clean_fails_on_violation(self, tmp_path):
        code = main([
            "run", "--substrate", "sim", "--target", "fischer_n3",
            "--seed", "demo-a", "--campaigns", "1", "--schedules", "20",
            "--expect", "clean",
        ])
        assert code == 1

    def test_expect_clean_net_campaign(self):
        code = main([
            "run", "--substrate", "net", "--seed", "net-cli",
            "--campaigns", "1", "--schedules", "2", "--expect", "clean",
        ])
        assert code == 0

    def test_expect_violation_fails_when_clean(self):
        code = main([
            "run", "--substrate", "net", "--seed", "net-cli",
            "--campaigns", "1", "--schedules", "1", "--expect", "violation",
        ])
        assert code == 1


class TestShrinkCommand:
    def test_reshrink_artifact_in_place(self, tmp_path):
        art_dir = tmp_path / "artifacts"
        assert main([
            "run", "--substrate", "sim", "--target", "fischer_n3",
            "--seed", "demo-a", "--campaigns", "1", "--schedules", "20",
            "--expect", "violation", "--artifact-dir", str(art_dir),
        ]) == 0
        (artifact_path,) = sorted(art_dir.glob("*.json"))
        out = tmp_path / "shrunk.json"
        assert main(["shrink", str(artifact_path), "-o", str(out)]) == 0
        original = json.loads(artifact_path.read_text())
        shrunk = json.loads(out.read_text())
        assert len(shrunk["schedule"]) <= len(original["schedule"])
        assert len(shrunk["campaign"]["windows"]) <= 1
        assert "re_shrink" in shrunk["provenance"]
        assert main(["replay", str(out)]) == 0


class TestCommittedArtifact:
    """Tier-1 smoke: the archived Fischer violation replays byte-identically."""

    PATH = ARTIFACTS / "fischer_n3_violation.json"

    def test_artifact_is_committed(self):
        assert self.PATH.is_file()

    def test_replays_identically(self):
        assert main(["replay", str(self.PATH)]) == 0

    def test_artifact_content_sanity(self):
        data = json.loads(self.PATH.read_text())
        assert data["substrate"] == "sim"
        assert data["target"] == "fischer_n3"
        assert data["violation"]["monitor"] == "mutual_exclusion"
        # the committed artifact is the *shrunk* counterexample
        assert len(data["schedule"]) <= 10
        assert len(data["campaign"]["windows"]) <= 1
