"""Tests for the delta-debugging shrinker, including the acceptance demo."""

import pytest

from repro.chaos.monitors import ChaosViolation
from repro.chaos.plan import Campaign, sample_sim_campaign
from repro.chaos.runner import run_sim, run_sim_campaign, sim_target
from repro.chaos.shrink import (
    ShrinkResult,
    _ddmin_field,
    _narrow_windows,
    _Session,
    ddmin,
    shrink_sim,
)
from repro.sim.failures import failure_window


class TestDdmin:
    def test_single_culprit_isolated(self):
        trace = []

        def fails(candidate):
            trace.append(tuple(candidate))
            return 7 in candidate

        assert ddmin(list(range(20)), fails) == [7]

    def test_pair_of_culprits_isolated(self):
        def fails(candidate):
            return 3 in candidate and 15 in candidate

        assert sorted(ddmin(list(range(20)), fails)) == [3, 15]

    def test_requires_failing_input(self):
        with pytest.raises(ValueError):
            ddmin([1, 2, 3], lambda c: False)

    def test_empty_failure_shrinks_to_nothing(self):
        assert ddmin([1, 2, 3], lambda c: True) == []

    def test_empty_input(self):
        assert ddmin([], lambda c: True) == []


def _fake_session(predicate):
    """A _Session whose oracle is a plain (campaign, payload) predicate."""

    def reproduce(campaign, payload):
        if predicate(campaign, payload):
            return ChaosViolation("m", "failed", 0)
        return None

    return _Session(reproduce, "m")


class TestSessionAndPasses:
    def test_session_memoizes_and_counts(self):
        calls = []
        session = _fake_session(lambda c, p: calls.append(1) or True)
        campaign = Campaign(substrate="sim", seed="s")
        assert session.fails(campaign, (1, 2))
        assert session.fails(campaign, (1, 2))  # memo hit
        assert session.executions == 1 and len(calls) == 1

    def test_session_ignores_other_monitors(self):
        session = _Session(
            lambda c, p: ChaosViolation("other", "different bug", 0), "m"
        )
        assert not session.fails(Campaign(substrate="sim", seed="s"), ())

    def test_ddmin_field_keeps_only_load_bearing_window(self):
        w_noise1 = failure_window(0.0, 1.0)
        w_culprit = failure_window(5.0, 6.0, stretch=3.0)
        w_noise2 = failure_window(8.0, 9.0)
        campaign = Campaign(substrate="sim", seed="s",
                            windows=(w_noise1, w_culprit, w_noise2))
        session = _fake_session(lambda c, p: w_culprit in c.windows)
        shrunk = _ddmin_field(session, campaign, (), "windows")
        assert shrunk.windows == (w_culprit,)

    def test_narrow_windows_converges_on_critical_instant(self):
        # The bug needs the window to cover t=7.3; narrowing should close
        # in on a sliver around it.
        campaign = Campaign(substrate="sim", seed="s",
                            windows=(failure_window(0.0, 64.0),))
        session = _fake_session(
            lambda c, p: all(w.start <= 7.3 < w.end for w in c.windows)
        )
        narrowed = _narrow_windows(session, campaign, (), min_width=0.5)
        (window,) = narrowed.windows
        assert window.start <= 7.3 < window.end
        assert window.end - window.start <= 1.0

    def test_narrow_windows_skips_open_ended(self):
        import math

        campaign = Campaign(substrate="sim", seed="s",
                            windows=(failure_window(0.0, math.inf),))
        session = _fake_session(lambda c, p: True)
        assert _narrow_windows(session, campaign, ()) == campaign


class TestShrinkSim:
    def test_non_reproducing_failure_returns_none(self):
        target = sim_target("fischer_n3")
        campaign = Campaign(substrate="sim", seed="s")
        # An all-same-pid schedule cannot violate mutual exclusion.
        assert shrink_sim(target, campaign, [0, 0, 0],
                          monitor="mutual_exclusion") is None

    @pytest.mark.parametrize("seed", ["demo-a", "s1"])
    def test_acceptance_demo(self, seed, tmp_path):
        """ISSUE 5 acceptance: a Fischer n=3 violation under a 6-window
        campaign shrinks to <= 1 window and <= 25% of the schedule, and
        ``python -m repro.chaos replay`` reproduces it identically."""
        from repro.chaos.__main__ import main as chaos_main
        from repro.chaos.artifact import artifact_from_sim, save_artifact

        target = sim_target("fischer_n3")
        campaign = sample_sim_campaign(seed, pids=target.pids, windows=6)
        assert len(campaign.windows) == 6
        report = run_sim_campaign(target, campaign, schedules=20)
        assert not report.ok, "expected a violation for this seed"
        outcome = report.failing
        violation = outcome.find("mutual_exclusion")
        assert violation is not None

        shrunk = shrink_sim(target, campaign, outcome.schedule,
                            monitor="mutual_exclusion")
        assert shrunk is not None
        assert len(shrunk.campaign.windows) <= 1
        assert shrunk.payload_reduction <= 0.25
        assert shrunk.violation.monitor == "mutual_exclusion"

        # Shrinking must preserve reproducibility: the exact CLI replay.
        artifact = artifact_from_sim(target.name, outcome,
                                     violation=violation, shrunk=shrunk)
        path = tmp_path / f"{seed}.json"
        save_artifact(artifact, path)
        assert chaos_main(["replay", str(path)]) == 0

    def test_shrink_keeps_load_bearing_crash(self):
        # A wedge caused by a crash cannot lose its crash entry.
        target = sim_target("fischer_n3")
        campaign = Campaign(substrate="sim", seed="wedge",
                            crash_after=((0, 3),))
        outcome = run_sim(target, campaign, run_seed="0")
        violation = outcome.find("convergence")
        assert violation is not None
        shrunk = shrink_sim(target, campaign, outcome.schedule,
                            monitor="convergence")
        assert shrunk is not None
        assert shrunk.campaign.crash_after == ((0, 3),)

    def test_result_bookkeeping(self):
        target = sim_target("fischer_n3")
        campaign = sample_sim_campaign("demo-a", pids=target.pids, windows=6)
        report = run_sim_campaign(target, campaign, schedules=20)
        outcome = report.failing
        shrunk = shrink_sim(target, campaign, outcome.schedule,
                            monitor="mutual_exclusion")
        assert isinstance(shrunk, ShrinkResult)
        assert shrunk.original_campaign == campaign
        assert shrunk.original_payload == outcome.schedule
        assert shrunk.executions > 0 and shrunk.rounds >= 1
        assert "executions" in shrunk.summary()
