"""Tests for campaign execution on both substrates."""

import pytest

from repro.chaos.monitors import ChaosViolation
from repro.chaos.plan import Campaign, MemCorruption, sample_net_campaign, sample_sim_campaign
from repro.chaos.runner import (
    SIM_TARGETS,
    NetParams,
    SimTarget,
    run_net,
    run_net_campaign,
    run_sim,
    run_sim_campaign,
    sample_net_workload,
    sim_target,
)
from repro.sim import ops
from repro.sim.failures import failure_window
from repro.sim.registers import Register
from repro.verify.properties import InvariantProperty


class TestTargets:
    def test_registry_has_the_standard_targets(self):
        assert set(SIM_TARGETS) == {
            "fischer_n3",
            "alg3_n4",
            "consensus_n4",
            "dg_mutex_n3",
            "golab_consensus_n3",
        }

    def test_recover_flags(self):
        assert sim_target("dg_mutex_n3").recover
        assert sim_target("dg_mutex_n3").corruptible == ("S0", "S1", "S2")
        assert sim_target("golab_consensus_n3").recover
        assert not sim_target("fischer_n3").recover

    def test_unknown_target_rejected_with_suggestions(self):
        with pytest.raises(KeyError, match="fischer_n3"):
            sim_target("fischer_n99")

    def test_builds_are_fresh_per_call(self):
        target = sim_target("fischer_n3")
        f1, p1, r1 = target.build()
        f2, p2, r2 = target.build()
        assert f1 is not f2 and r1["x"] is not r2["x"]


def _counter_target(max_ops=10):
    """A tiny two-process target over one register, for focused tests."""
    register_box = {}

    def build():
        reg = Register("cnt", 0)
        register_box["reg"] = reg

        def prog(pid):
            for _ in range(3):
                v = yield ops.read(reg)
                yield ops.write(reg, v + 1)

        prop = InvariantProperty(
            lambda sb: sb.memory.peek(register_box["reg"]) < 99,
            name="no99", message="register hit 99",
        )
        return {0: prog, 1: prog}, [prop], {"cnt": reg}

    return SimTarget("counter", "test target", build, max_ops=max_ops,
                     pids=(0, 1), expect_violation=False)


class TestRunSimGeneration:
    def test_deterministic_per_run_seed(self):
        target = sim_target("fischer_n3")
        campaign = sample_sim_campaign("det", pids=target.pids)
        a = run_sim(target, campaign, run_seed="0")
        b = run_sim(target, campaign, run_seed="0")
        c = run_sim(target, campaign, run_seed="1")
        assert a.schedule == b.schedule and a.violations == b.violations
        assert a.schedule != c.schedule

    def test_replay_of_generated_schedule_is_identical(self):
        # The core determinism claim: feeding the recorded schedule back
        # reproduces the execution exactly, violations included.
        target = sim_target("fischer_n3")
        campaign = sample_sim_campaign("det", pids=target.pids)
        generated = run_sim(target, campaign, run_seed="3")
        replayed = run_sim(target, campaign, schedule=list(generated.schedule))
        assert replayed.schedule == generated.schedule
        assert replayed.violations == generated.violations

    def test_wrong_substrate_rejected(self):
        target = sim_target("fischer_n3")
        with pytest.raises(ValueError):
            run_sim(target, sample_net_campaign("n"))

    def test_crash_after_zero_silences_pid(self):
        campaign = Campaign(substrate="sim", seed="c", crash_after=((0, 0),))
        outcome = run_sim(_counter_target(), campaign, run_seed="0")
        assert 0 not in outcome.schedule
        assert 1 in outcome.schedule

    def test_crash_at_logical_time_stops_pid(self):
        campaign = Campaign(substrate="sim", seed="c", crash_at=((0, 2.0),))
        outcome = run_sim(_counter_target(), campaign, run_seed="0")
        assert 0 not in outcome.schedule[2:]

    def test_corruption_applied_at_logical_time(self):
        campaign = Campaign(
            substrate="sim", seed="c",
            corruptions=(MemCorruption(at=0.0, register="cnt", value=99),),
        )
        outcome = run_sim(_counter_target(), campaign, run_seed="0")
        violation = outcome.find("no99")
        assert violation is not None and violation.step == 1

    def test_unknown_corruption_register_is_an_error(self):
        campaign = Campaign(
            substrate="sim", seed="c",
            corruptions=(MemCorruption(at=0.0, register="nope", value=1),),
        )
        with pytest.raises(ValueError, match="nope"):
            run_sim(_counter_target(), campaign, run_seed="0")

    def test_window_freezes_affected_pid_while_others_run(self):
        # Pid 0 is stalled by an always-open window, so the scheduler must
        # drain pid 1 completely before touching pid 0.
        campaign = Campaign(
            substrate="sim", seed="w",
            windows=(failure_window(0.0, 1e9, pids=[0]),),
        )
        outcome = run_sim(_counter_target(), campaign, run_seed="0")
        first_zero = outcome.schedule.index(0)
        assert set(outcome.schedule[:first_zero]) == {1}
        assert outcome.done  # freezing is a bias, not a deadlock

    def test_stop_monitor_cuts_the_run_short(self):
        campaign = Campaign(
            substrate="sim", seed="c",
            corruptions=(MemCorruption(at=0.0, register="cnt", value=99),),
        )
        outcome = run_sim(_counter_target(), campaign, run_seed="0",
                          stop_monitor="no99")
        assert outcome.steps == 1 and not outcome.done

    def test_outcome_helpers(self):
        campaign = Campaign(substrate="sim", seed="c")
        outcome = run_sim(_counter_target(), campaign, run_seed="0")
        assert outcome.ok and outcome.find("no99") is None
        assert "ok" in repr(outcome)


class TestRunSimCampaign:
    def test_finds_fischer_violation(self):
        target = sim_target("fischer_n3")
        campaign = sample_sim_campaign("demo-a", pids=target.pids, windows=6)
        report = run_sim_campaign(target, campaign, schedules=20)
        assert not report.ok
        assert report.failing.find("mutual_exclusion") is not None
        assert report.schedules_run <= 20

    def test_clean_campaign_reports_ok(self):
        campaign = Campaign(substrate="sim", seed="clean")
        report = run_sim_campaign(_counter_target(), campaign, schedules=3)
        assert report.ok and report.schedules_run == 3
        assert "ok" in repr(report)


class TestRunNet:
    def test_deterministic_and_clean_on_abd(self):
        params = NetParams()
        campaign = sample_net_campaign("net-1")
        workload = sample_net_workload(campaign, "0", params)
        a = run_net(campaign, workload, params=params, run_seed="0")
        b = run_net(campaign, workload, params=params, run_seed="0")
        assert a.ok  # ABD under faults must stay linearizable
        assert (a.operations, a.pending, a.status) == (
            b.operations, b.pending, b.status)

    def test_workload_sampling_deterministic(self):
        params = NetParams()
        campaign = sample_net_campaign("net-1")
        assert sample_net_workload(campaign, "0", params) == \
            sample_net_workload(campaign, "0", params)
        assert sample_net_workload(campaign, "0", params) != \
            sample_net_workload(campaign, "1", params)

    def test_workload_shape_validated(self):
        campaign = sample_net_campaign("net-1")
        with pytest.raises(ValueError):
            run_net(campaign, ((("read", 0, None),),), params=NetParams(clients=2))

    def test_wrong_substrate_rejected(self):
        campaign = sample_sim_campaign("s", pids=(0, 1))
        with pytest.raises(ValueError):
            run_net(campaign, ((), ()))

    def test_run_net_campaign_clean(self):
        campaign = sample_net_campaign("net-2")
        report = run_net_campaign(campaign, schedules=2)
        assert report.ok and report.schedules_run == 2
