"""Shared helpers for the test suite."""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import pytest

from repro.algorithms import (
    BakeryLock,
    BarDavidLock,
    BlackWhiteBakeryLock,
    FilterLock,
    FischerLock,
    LamportFastLock,
    MutexAlgorithm,
    PetersonTwoProcess,
    TournamentLock,
    mutex_session,
)
from repro.core.mutex import TimeResilientMutex, default_time_resilient_mutex
from repro.sim import ConstantTiming, Engine, RunResult, TimingModel
from repro.sim.failures import CrashSchedule
from repro.sim.scheduler import TieBreak


def run_lock(
    lock: MutexAlgorithm,
    n: int,
    sessions: int = 3,
    cs_duration: float = 0.3,
    ncs_duration: float = 0.5,
    timing: Optional[TimingModel] = None,
    delta: float = 1.0,
    max_time: float = 50_000.0,
    max_total_steps: float = 2_000_000,
    tie_break: Optional[TieBreak] = None,
    crashes: Optional[CrashSchedule] = None,
    start_delays: Optional[Sequence[float]] = None,
) -> RunResult:
    """Run ``n`` session programs over ``lock`` and return the result."""
    engine = Engine(
        delta=delta,
        timing=timing if timing is not None else ConstantTiming(0.4),
        max_time=max_time,
        max_total_steps=max_total_steps,
        tie_break=tie_break,
        crashes=crashes,
    )
    for pid in range(n):
        start = 0.0 if start_delays is None else start_delays[pid]
        engine.spawn(
            mutex_session(
                lock,
                pid,
                sessions,
                cs_duration=cs_duration,
                ncs_duration=ncs_duration,
                start_delay=start,
            ),
            pid=pid,
        )
    return engine.run()


def make_lock(name: str, n: int, delta: float = 1.0) -> MutexAlgorithm:
    """Factory used by parametrized lock tests."""
    if name == "fischer":
        return FischerLock(delta=delta)
    if name == "lamport_fast":
        return LamportFastLock(n)
    if name == "bakery":
        return BakeryLock(n)
    if name == "black_white_bakery":
        return BlackWhiteBakeryLock(n)
    if name == "peterson2":
        return PetersonTwoProcess()
    if name == "filter":
        return FilterLock(n)
    if name == "tournament":
        return TournamentLock(n)
    if name == "bar_david":
        return BarDavidLock(LamportFastLock(n), n)
    if name == "alg3":
        return default_time_resilient_mutex(n, delta=delta)
    raise ValueError(f"unknown lock {name!r}")


#: Locks that are safe and live in a fully asynchronous run.
ASYNC_LOCKS = [
    "lamport_fast",
    "bakery",
    "black_white_bakery",
    "filter",
    "tournament",
    "bar_david",
]

#: All locks, safe when the timing constraints hold.
ALL_LOCKS = ASYNC_LOCKS + ["fischer", "alg3"]

#: Locks claiming starvation-freedom.
STARVATION_FREE_LOCKS = ["bakery", "black_white_bakery", "tournament", "bar_david"]


@pytest.fixture
def delta() -> float:
    return 1.0
