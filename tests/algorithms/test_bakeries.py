"""Tests specific to the bakery algorithms (classic and black-white)."""

import pytest

from repro.algorithms import (
    BLACK,
    WHITE,
    BakeryLock,
    BlackWhiteBakeryLock,
    mutex_session,
)
from repro.sim import AsynchronousTiming, ConstantTiming, Engine, RunStatus, UniformTiming
from repro.spec import check_mutual_exclusion, max_bypass


def run(lock, n, sessions=3, timing=None, cs=0.2, ncs=0.3, max_time=100_000.0):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.4), max_time=max_time)
    for pid in range(n):
        eng.spawn(
            mutex_session(lock, pid, sessions, cs_duration=cs, ncs_duration=ncs),
            pid=pid,
        )
    return eng.run()


class TestClassicBakery:
    def test_fifo_fairness_bypass_at_most_n(self):
        n = 4
        res = run(BakeryLock(n), n, sessions=4, timing=UniformTiming(0.1, 0.9, seed=3))
        assert res.status is RunStatus.COMPLETED
        worst, _ = max_bypass(res.trace)
        # Bakery is FIFO after the doorway: bypass bounded by n - 1 plus
        # doorway races.
        assert worst <= 2 * n

    def test_tickets_grow_unboundedly(self):
        """The classic bakery's known drawback: tickets keep increasing."""
        n = 3
        lock = BakeryLock(n)
        res = run(lock, n, sessions=6, cs=0.1, ncs=0.0)
        max_ticket = max(
            (e.value for e in res.trace
             if e.kind == "write" and isinstance(e.register, tuple)
             and e.register[0] == lock.number.base and e.value),
            default=0,
        )
        assert max_ticket > n  # grows past n, unlike the black-white variant

    def test_number_reset_on_exit(self):
        lock = BakeryLock(2)
        res = run(lock, 2, sessions=1)
        assert res.memory.peek(lock.number[0]) == 0
        assert res.memory.peek(lock.number[1]) == 0


class TestBlackWhiteBakery:
    def test_exclusion_asynchronous(self):
        n = 4
        res = run(
            BlackWhiteBakeryLock(n), n, sessions=3,
            timing=AsynchronousTiming(base=0.3, tail_prob=0.3, seed=5),
        )
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    def test_tickets_bounded_by_n(self):
        """The whole point of the black-white variant (bounded space)."""
        n = 4
        lock = BlackWhiteBakeryLock(n)
        res = run(lock, n, sessions=8, cs=0.1, ncs=0.0)
        tickets = [
            e.value for e in res.trace
            if e.kind == "write" and isinstance(e.register, tuple)
            and e.register[0] == lock.number.base and e.value
        ]
        assert tickets and max(tickets) <= n

    def test_color_flips_on_exit(self):
        lock = BlackWhiteBakeryLock(2)
        res = run(lock, 1, sessions=1)
        assert res.memory.peek(lock.color) == WHITE  # started BLACK, one exit

    def test_two_exits_flip_back(self):
        lock = BlackWhiteBakeryLock(2)
        res = run(lock, 1, sessions=2)
        assert res.memory.peek(lock.color) == BLACK

    def test_bounded_bypass(self):
        n = 4
        res = run(
            BlackWhiteBakeryLock(n), n, sessions=4,
            timing=UniformTiming(0.1, 0.9, seed=8),
        )
        worst, _ = max_bypass(res.trace)
        assert worst <= 3 * n

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            BlackWhiteBakeryLock(0)
