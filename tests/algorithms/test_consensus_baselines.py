"""Tests for the baseline consensus algorithms (AT one-shot, AAT unknown-Δ)."""

import pytest

from repro.algorithms import AatConsensus, AtConsensus
from repro.sim import (
    ConstantTiming,
    Engine,
    HookTiming,
    RunStatus,
    UniformTiming,
    stall_write_to,
)
from repro.spec import check_consensus


def run_at(inputs, timing=None, delta=1.0, algo_delta=None):
    algo = AtConsensus(delta=algo_delta or delta)
    eng = Engine(delta=delta, timing=timing or ConstantTiming(0.4))
    for pid, v in enumerate(inputs):
        eng.spawn(algo.propose(pid, v), pid=pid)
    return eng.run(), {pid: v for pid, v in enumerate(inputs)}


def run_aat(inputs, timing=None, delta=1.0, est0=0.1, max_time=100_000.0):
    algo = AatConsensus(initial_estimate=est0)
    eng = Engine(delta=delta, timing=timing or ConstantTiming(0.4), max_time=max_time)
    for pid, v in enumerate(inputs):
        eng.spawn(algo.propose(pid, v), pid=pid)
    return eng.run(), {pid: v for pid, v in enumerate(inputs)}


class TestAtConsensus:
    def test_agrees_without_failures(self):
        res, inputs = run_at([0, 1, 1])
        v = check_consensus(res, inputs)
        assert v.ok

    def test_always_terminates_constant_steps(self):
        res, _ = run_at([0, 1])
        assert res.status is RunStatus.COMPLETED
        for pid in (0, 1):
            assert res.trace.shared_step_count(pid) <= 5

    def test_solo_decides_own_value(self):
        res, inputs = run_at([1])
        assert res.returns == {0: 1}

    def test_disagreement_under_targeted_timing_failure(self):
        """The stalled y-write schedule: AT decides conflicting values.

        This is the contrast with Algorithm 1 — same schedule, but
        Algorithm 1 merely loses a round while AT loses agreement.
        """
        algo = AtConsensus(delta=1.0)
        hook = stall_write_to(algo.y.name, duration=6.0, pids=[0], count=1)
        eng = Engine(delta=1.0, timing=HookTiming(ConstantTiming(0.4), hook))
        eng.spawn(algo.propose(0, 0), pid=0)
        eng.spawn(algo.propose(1, 1), pid=1)
        res = eng.run()
        v = check_consensus(res, {0: 0, 1: 1})
        assert not v.agreed, "AT consensus must lose agreement under this failure"

    def test_rejects_nonbinary(self):
        algo = AtConsensus(delta=1.0)
        with pytest.raises(ValueError):
            list(algo.propose(0, 7))


class TestAatConsensus:
    def test_agrees_with_tiny_initial_estimate(self):
        res, inputs = run_aat([0, 1, 1, 0], est0=0.01)
        v = check_consensus(res, inputs)
        assert v.ok

    def test_estimate_doubles_per_round(self):
        algo = AatConsensus(initial_estimate=0.5)
        assert algo.estimate_for_round(1) == 0.5
        assert algo.estimate_for_round(2) == 1.0
        assert algo.estimate_for_round(4) == 4.0

    def test_small_estimate_costs_more_rounds_than_good_estimate(self):
        slow, _ = run_aat([0, 1], est0=0.01)
        fast, _ = run_aat([0, 1], est0=1.0)
        slow_delays = len([e for e in slow.trace if e.kind == "delay"])
        fast_delays = len([e for e in fast.trace if e.kind == "delay"])
        assert slow_delays >= fast_delays

    def test_safety_under_jitter_many_seeds(self):
        for seed in range(8):
            res, inputs = run_aat(
                [0, 1, 1], timing=UniformTiming(0.05, 1.0, seed=seed), est0=0.05
            )
            v = check_consensus(res, inputs, require_termination=False)
            assert v.safe, seed

    def test_validation(self):
        with pytest.raises(ValueError):
            AatConsensus(initial_estimate=0)
        with pytest.raises(ValueError):
            AatConsensus(initial_estimate=1, growth=1.0)
        algo = AatConsensus(initial_estimate=1)
        with pytest.raises(ValueError):
            list(algo.propose(0, 5))
