"""Cross-cutting tests every lock must pass (parametrized suite)."""

import pytest

from repro.sim import (
    AsynchronousTiming,
    ConstantTiming,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
)
from repro.spec import check_mutex, check_mutual_exclusion, check_starvation

from tests.conftest import (
    ALL_LOCKS,
    ASYNC_LOCKS,
    STARVATION_FREE_LOCKS,
    make_lock,
    run_lock,
)


@pytest.mark.parametrize("name", ALL_LOCKS)
@pytest.mark.parametrize("n", [1, 2, 3])
def test_exclusion_and_completion_clean_timing(name, n):
    """With steps within Δ every lock is safe and every session completes."""
    if name == "peterson2" and n > 2:
        pytest.skip("2-process lock")
    lock = make_lock(name, n)
    res = run_lock(lock, n, sessions=3)
    assert res.status is RunStatus.COMPLETED, (name, n, res)
    assert check_mutual_exclusion(res.trace) == []
    assert len(res.trace.cs_intervals()) == 3 * n


@pytest.mark.parametrize("name", ALL_LOCKS)
def test_solo_process_enters_immediately(name):
    lock = make_lock(name, 4 if name != "peterson2" else 2)
    res = run_lock(lock, 1, sessions=2)
    assert res.status is RunStatus.COMPLETED
    assert len(res.trace.cs_intervals()) == 2


@pytest.mark.parametrize("name", ALL_LOCKS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_exclusion_under_jitter(name, seed):
    """Random step times within Δ: safety and completion must hold."""
    n = 2 if name == "peterson2" else 3
    lock = make_lock(name, n)
    res = run_lock(
        lock,
        n,
        sessions=3,
        timing=UniformTiming(0.05, 1.0, seed=seed),
        tie_break=RandomTieBreak(seed),
    )
    assert res.status is RunStatus.COMPLETED, (name, seed)
    assert check_mutual_exclusion(res.trace) == []


@pytest.mark.parametrize("name", ASYNC_LOCKS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_async_locks_safe_and_live_without_timing(name, seed):
    """Asynchronous locks need no timing assumption at all."""
    n = 3
    lock = make_lock(name, n)
    res = run_lock(
        lock,
        n,
        sessions=3,
        timing=AsynchronousTiming(base=0.3, tail_prob=0.25, seed=seed),
        max_time=100_000.0,
    )
    assert res.status is RunStatus.COMPLETED, (name, seed)
    assert check_mutual_exclusion(res.trace) == []


@pytest.mark.parametrize("name", STARVATION_FREE_LOCKS)
def test_starvation_free_locks_have_bounded_bypass(name):
    n = 4
    lock = make_lock(name, n)
    res = run_lock(lock, n, sessions=4, timing=UniformTiming(0.05, 0.9, seed=9))
    assert res.status is RunStatus.COMPLETED
    starved, worst = check_starvation(res.trace, bypass_bound=4 * n)
    assert starved == []


@pytest.mark.parametrize("name", ALL_LOCKS)
def test_register_count_claims_match_usage(name):
    """The static register_count must upper-bound what a run touches."""
    n = 2 if name == "peterson2" else 4
    lock = make_lock(name, n)
    res = run_lock(lock, n, sessions=2)
    claimed = lock.register_count(n)
    if claimed is not None:
        assert res.memory.register_count <= claimed, (
            name,
            res.memory.touched_registers,
        )


@pytest.mark.parametrize("name", ALL_LOCKS)
def test_register_count_meets_lower_bound_when_contended(name):
    """Theorem 3.1 context: n-process algorithms need >= n registers.

    (Fischer has 1 register and is NOT resilient; every asynchronous lock
    and Algorithm 3's claimed counts must be >= n.)
    """
    n = 2 if name == "peterson2" else 4
    lock = make_lock(name, n)
    claimed = lock.register_count(n)
    if name == "fischer":
        assert claimed == 1  # the exception that proves the theorem's point
    elif claimed is not None:
        assert claimed >= n


@pytest.mark.parametrize("name", ["fischer", "lamport_fast", "bar_david", "alg3"])
def test_fast_locks_constant_solo_steps(name):
    """The paper's 'fast': contention-free entry in O(1) own steps."""
    lock = make_lock(name, 8)
    res = run_lock(lock, 1, sessions=1, cs_duration=0.0, ncs_duration=0.0)
    steps = res.trace.shared_step_count(0)
    assert steps <= 20, f"{name}: {steps} solo steps is not 'fast'"


@pytest.mark.parametrize("name", ["bakery", "black_white_bakery", "filter"])
def test_scan_locks_solo_steps_grow_with_n(name):
    """Non-fast locks pay Θ(n) even alone — the contrast in E7."""
    def solo_steps(n):
        lock = make_lock(name, n)
        res = run_lock(lock, 1, sessions=1, cs_duration=0.0, ncs_duration=0.0)
        return res.trace.shared_step_count(0)

    assert solo_steps(16) > solo_steps(4) + 8


@pytest.mark.parametrize("name", ALL_LOCKS)
def test_staggered_arrivals(name):
    n = 2 if name == "peterson2" else 3
    lock = make_lock(name, n)
    res = run_lock(lock, n, sessions=2, start_delays=[0.0, 2.5, 7.0][:n])
    assert res.status is RunStatus.COMPLETED
    assert check_mutual_exclusion(res.trace) == []


@pytest.mark.parametrize("name", ALL_LOCKS)
def test_out_of_range_pid_rejected(name):
    if name in ("fischer", "alg3"):
        pytest.skip("id-based locks accept any pid")
    n = 2 if name == "peterson2" else 3
    lock = make_lock(name, n)
    with pytest.raises(ValueError):
        list(lock.entry(n + 5))


@pytest.mark.parametrize("name", ALL_LOCKS)
def test_properties_declared(name):
    lock = make_lock(name, 2)
    props = lock.properties
    assert props.deadlock_free  # every lock here is at least deadlock-free
    if props.starvation_free:
        assert name in STARVATION_FREE_LOCKS or name == "peterson2"
