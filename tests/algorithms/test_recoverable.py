"""Golab-style recoverable consensus: agreement across crash-restart cycles."""

import random

import pytest

from repro.algorithms.recoverable import RecoverableConsensus
from repro.verify.sandbox import Sandbox


def _proposer(consensus, inputs):
    def factory(pid):
        return consensus.propose(pid, inputs[pid])

    return factory


class TestBasicConsensus:
    def test_rejects_none_proposal(self):
        consensus = RecoverableConsensus()
        with pytest.raises(ValueError, match="None"):
            next(consensus.propose(0, None))

    @pytest.mark.parametrize("seed", ["x", "y", "z"])
    def test_agreement_and_validity_under_random_schedules(self, seed):
        consensus = RecoverableConsensus()
        inputs = {0: 10, 1: 20, 2: 30}
        factory = _proposer(consensus, inputs)
        sb = Sandbox({pid: factory for pid in inputs}, max_ops=30)
        rng = random.Random(seed)
        while sb.enabled():
            sb.step(rng.choice(sb.enabled()))
        decided = set(sb.results.values())
        assert len(decided) == 1  # agreement
        assert decided <= set(inputs.values())  # validity
        assert sb.decisions == {pid: sb.result(pid) for pid in inputs}

    def test_recovery_fast_path_adopts_recorded_decision(self):
        consensus = RecoverableConsensus()
        factory = _proposer(consensus, {0: 7})
        sb = Sandbox({0: factory}, max_ops=30)
        sb.memory.poke(consensus.decision, 99)  # D already written
        while sb.enabled():
            sb.step(0)
        assert sb.result(0) == 99
        assert sb.memory.peek(consensus.cell) is None  # C never touched


class TestCrashRecovery:
    def test_propose_is_idempotent_across_restart(self):
        # pid 0 wins the CAS, then crashes before recording the decision;
        # the fresh incarnation re-runs propose from the top and must
        # re-derive the same winner, not CAS a second value in.
        consensus = RecoverableConsensus()
        inputs = {0: 1, 1: 2}
        factory = _proposer(consensus, inputs)
        sb = Sandbox({pid: factory for pid in inputs}, max_ops=30)
        sb.step(0)  # read D (bottom)
        sb.step(0)  # CAS(C, bottom, 1): pid 0 is the winner
        assert sb.memory.peek(consensus.cell) == 1
        sb.restart(0, factory)  # crash before D := w, restart fresh
        while sb.enabled():
            sb.step(1)
            if sb.enabled() and 0 in sb.enabled():
                sb.step(0)
        assert sb.result(0) == 1 and sb.result(1) == 1
        assert sb.memory.peek(consensus.decision) == 1

    def test_restart_after_decision_readopts_it(self):
        consensus = RecoverableConsensus()
        inputs = {0: 5, 1: 6}
        factory = _proposer(consensus, inputs)
        sb = Sandbox({pid: factory for pid in inputs}, max_ops=30)
        while not sb.done(0):
            sb.step(0)  # pid 0 decides 5 solo
        first = sb.result(0)
        sb.restart(0, factory)
        while not sb.done(0):
            sb.step(0)  # fresh incarnation takes the D fast path
        assert sb.result(0) == first == 5
        while sb.enabled():
            sb.step(1)
        assert sb.result(1) == 5

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_survives_random_restarts(self, seed):
        consensus = RecoverableConsensus()
        inputs = {0: 10, 1: 20, 2: 30}
        factory = _proposer(consensus, inputs)
        sb = Sandbox({pid: factory for pid in inputs}, max_ops=60)
        rng = random.Random(f"restart:{seed}")
        restarts = 0
        while sb.enabled():
            pid = rng.choice(sb.enabled())
            sb.step(pid)
            if restarts < 3 and not sb.done(pid) and rng.random() < 0.2:
                sb.restart(pid, factory)
                restarts += 1
        decided = set(sb.results.values())
        assert len(decided) == 1
        assert decided <= set(inputs.values())
