"""Tests specific to Lamport's fast mutual exclusion algorithm."""

import pytest

from repro.algorithms import FREE, LamportFastLock, mutex_session
from repro.sim import AsynchronousTiming, ConstantTiming, Engine, RunStatus
from repro.spec import check_mutual_exclusion


def run(lock, n, sessions=2, timing=None, cs=0.2, ncs=0.3, max_time=50_000.0):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.4), max_time=max_time)
    for pid in range(n):
        eng.spawn(
            mutex_session(lock, pid, sessions, cs_duration=cs, ncs_duration=ncs),
            pid=pid,
        )
    return eng.run()


def test_solo_fast_path_step_count():
    """Uncontended entry: b[i], x, y-read, y-write, x-read = 5 steps."""
    lock = LamportFastLock(8)
    eng = Engine(delta=1.0, timing=ConstantTiming(0.4))
    eng.spawn(mutex_session(lock, 0, sessions=1), pid=0)
    res = eng.run()
    entry_reads_writes = [
        e
        for e in res.trace.for_pid(0)
        if e.is_shared and e.completed <= res.trace.cs_intervals()[0].enter
    ]
    assert len(entry_reads_writes) == 5


def test_solo_fast_path_independent_of_n():
    def steps(n):
        lock = LamportFastLock(n)
        eng = Engine(delta=1.0, timing=ConstantTiming(0.4))
        eng.spawn(mutex_session(lock, 0, sessions=1), pid=0)
        return eng.run().trace.shared_step_count(0)

    assert steps(2) == steps(64)


def test_contended_path_scans_b_flags():
    """Under contention the slow path reads every b[j]."""
    lock = LamportFastLock(6)
    res = run(lock, 6, sessions=1, cs=0.5)
    assert res.status is RunStatus.COMPLETED
    b_reads = [
        e for e in res.trace
        if e.kind == "read" and isinstance(e.register, tuple)
        and e.register[0] == lock.b.base
    ]
    assert len(b_reads) >= 6  # someone scanned all flags


def test_exclusion_fully_asynchronous():
    lock = LamportFastLock(4)
    res = run(
        lock, 4, sessions=3,
        timing=AsynchronousTiming(base=0.3, tail_prob=0.3, seed=11),
        max_time=200_000.0,
    )
    assert res.status is RunStatus.COMPLETED
    assert check_mutual_exclusion(res.trace) == []


def test_exit_resets_y_and_flag():
    lock = LamportFastLock(2)
    res = run(lock, 1, sessions=1)
    assert res.memory.peek(lock.y) == FREE
    assert res.memory.peek(lock.b[0]) is False


def test_deadlock_free_not_starvation_free_claim():
    props = LamportFastLock(2).properties
    assert props.deadlock_free and props.fast
    assert not props.starvation_free


def test_register_count():
    assert LamportFastLock(5).register_count(5) == 7


def test_rejects_bad_n():
    with pytest.raises(ValueError):
        LamportFastLock(0)
