"""Dubois–Guerraoui speculative self-stabilizing token mutex."""

import random

import pytest

from repro.algorithms.dg_mutex import (
    DGTokenMutex,
    speculative_bound,
    stabilizing_ring,
    stabilizing_session,
)
from repro.verify.sandbox import Sandbox


class TestConstruction:
    def test_k_defaults_to_n_plus_one(self):
        assert DGTokenMutex(3).k == 4

    def test_rejects_k_not_exceeding_n(self):
        with pytest.raises(ValueError, match="K > n"):
            DGTokenMutex(3, k=3)

    def test_rejects_tiny_ring(self):
        with pytest.raises(ValueError):
            DGTokenMutex(1)

    def test_register_count_is_one_per_process(self):
        lock = DGTokenMutex(5)
        assert lock.register_count(5) == 5
        assert len(lock.cells) == 5

    def test_properties(self):
        props = DGTokenMutex(3).properties
        assert props.starvation_free and not props.timing_based

    def test_speculative_bound_grows_with_ring(self):
        assert speculative_bound(3) == 8 * 3 * (3 + 4)
        assert speculative_bound(3, k=10) > speculative_bound(3)


def _privileges(sandbox, lock):
    values = [sandbox.memory.peek(cell) for cell in lock.cells]
    count = 1 if values[0] == values[-1] else 0
    return count + sum(
        1 for i in range(1, lock.n) if values[i] != values[i - 1]
    )


class TestLegalRuns:
    def test_all_zero_start_has_single_privilege_at_root(self):
        lock = DGTokenMutex(3)
        sb = Sandbox({0: lambda p: lock.privileged(0)}, max_ops=10)
        assert _privileges(sb, lock) == 1
        sb.step(0)
        sb.step(0)
        assert sb.result(0) is True  # S[0] == S[n-1]: the root holds it

    @pytest.mark.parametrize("seed", ["a", "b", "c"])
    def test_mutual_exclusion_from_legal_start(self, seed):
        # From the legal all-zero configuration the ring is an ordinary
        # mutex: no interleaving may put two processes in the CS.
        n = 3
        lock, factory = stabilizing_ring(n, sessions=2, cs_duration=1.0)
        sb = Sandbox({pid: factory for pid in range(n)}, max_ops=400)
        rng = random.Random(seed)
        while sb.enabled():
            sb.step(rng.choice(sb.enabled()))
            assert len(sb.in_cs) <= 1
        assert all(sb.result(pid) == 2 for pid in range(n))

    def test_helper_mode_does_not_wedge_the_ring(self):
        # Round-robin: early finishers must keep forwarding the privilege
        # until everyone is done, or the token freezes at a stopped pid.
        n = 4
        lock, factory = stabilizing_ring(n, sessions=1)
        sb = Sandbox({pid: factory for pid in range(n)}, max_ops=600)
        pids = list(range(n))
        i = 0
        while sb.enabled():
            enabled = sb.enabled()
            while pids[i % n] not in enabled:
                i += 1
            sb.step(pids[i % n])
            i += 1
        assert all(sb.done(pid) for pid in range(n))

    def test_session_rejects_negative_sessions(self):
        lock, _ = stabilizing_ring(2)
        done = []
        with pytest.raises(ValueError):
            list(stabilizing_session(lock, done, 0, sessions=-1))


class TestStabilization:
    def test_corrupted_ring_drains_to_single_privilege(self):
        # Poke junk (including values >= K) into every cell, run round-
        # robin circulation, and require a legal suffix: self-
        # stabilization at work without the verify-layer machinery.
        n = 3
        lock = DGTokenMutex(n)

        def circulate(pid):
            while True:
                if (yield from lock.privileged(pid)):
                    yield from lock.exit(pid)

        sb = Sandbox({pid: circulate for pid in range(n)}, max_ops=200)
        rng = random.Random("corrupt")
        for cell in lock.cells:
            sb.memory.poke(cell, rng.randrange(0, 2 * lock.k))
        last_illegal = 0 if _privileges(sb, lock) != 1 else -1
        step = 0
        i = 0
        while sb.enabled():
            enabled = sb.enabled()
            while i % n not in enabled:
                i += 1
            sb.step(i % n)
            i += 1
            step += 1
            if _privileges(sb, lock) != 1:
                last_illegal = step
        assert step > 100  # the run was long enough to mean something
        assert last_illegal < speculative_bound(n)
        assert _privileges(sb, lock) == 1
