"""Tests specific to Fischer's timing-based lock (Algorithm 2)."""

import pytest

from repro.algorithms import FREE, FischerLock, mutex_session
from repro.sim import (
    ConstantTiming,
    Engine,
    HookTiming,
    RunStatus,
    stall_write_to,
)
from repro.spec import check_mutual_exclusion


def test_free_sentinel_distinct_from_pid_zero():
    assert FREE != 0


def test_entry_sequence_solo():
    """Solo doorway: read x, write x, delay(Δ), read x — then enter."""
    lock = FischerLock(delta=1.0)
    eng = Engine(delta=1.0, timing=ConstantTiming(0.25))
    eng.spawn(mutex_session(lock, 0, sessions=1), pid=0)
    res = eng.run()
    kinds = [e.kind for e in res.trace.for_pid(0) if e.kind in ("read", "write", "delay")]
    assert kinds == ["read", "write", "delay", "read", "write"]  # + exit write


def test_delay_uses_configured_delta():
    lock = FischerLock(delta=2.5)
    eng = Engine(delta=5.0, timing=ConstantTiming(0.25))
    eng.spawn(mutex_session(lock, 0, sessions=1), pid=0)
    res = eng.run()
    delays = [e for e in res.trace if e.kind == "delay"]
    assert delays and delays[0].duration == 2.5


def test_retry_when_doorway_contended():
    """A process losing the x-race repeats the doorway (the until loop)."""
    lock = FischerLock(delta=1.0)
    eng = Engine(delta=1.0, timing=ConstantTiming(0.4))
    for pid in range(3):
        eng.spawn(mutex_session(lock, pid, sessions=1, cs_duration=0.2), pid=pid)
    res = eng.run()
    assert res.status is RunStatus.COMPLETED
    assert check_mutual_exclusion(res.trace) == []
    # Someone must have retried: more than one write to x per CS entry in
    # at least one doorway.
    x_writes = [e for e in res.trace if e.kind == "write"]
    assert len(x_writes) > 2 * 3  # 3 sessions x (doorway write + exit write)


def test_exclusion_violated_by_late_write():
    """The motivating failure: a write stalled past delay(Δ) breaks mutex."""
    lock = FischerLock(delta=1.0)
    hook = stall_write_to(lock.x.name, duration=3.0, pids=[0], count=1)
    eng = Engine(delta=1.0, timing=HookTiming(ConstantTiming(0.4), hook))
    for pid in range(2):
        eng.spawn(mutex_session(lock, pid, sessions=1, cs_duration=4.0), pid=pid)
    res = eng.run()
    assert check_mutual_exclusion(res.trace), "stall must break Fischer"


def test_exclusion_holds_when_stall_within_delta():
    """A 'stall' still within Δ is not a timing failure: safety holds."""
    lock = FischerLock(delta=5.0)
    hook = stall_write_to(lock.x.name, duration=3.0, pids=[0], count=1)
    eng = Engine(delta=5.0, timing=HookTiming(ConstantTiming(0.4), hook))
    for pid in range(2):
        eng.spawn(mutex_session(lock, pid, sessions=1, cs_duration=4.0), pid=pid)
    res = eng.run()
    assert res.trace.timing_failures() == []
    assert check_mutual_exclusion(res.trace) == []


def test_one_register_only():
    lock = FischerLock(delta=1.0)
    eng = Engine(delta=1.0, timing=ConstantTiming(0.4))
    for pid in range(4):
        eng.spawn(mutex_session(lock, pid, sessions=2), pid=pid)
    res = eng.run()
    assert res.memory.register_count == 1


def test_rejects_nonpositive_delta():
    with pytest.raises(ValueError):
        FischerLock(delta=0.0)


def test_properties():
    props = FischerLock(delta=1.0).properties
    assert props.timing_based
    assert props.fast
    assert not props.starvation_free
    assert not props.exclusion_resilient
