"""Tests for the Bar-David starvation-freedom transformation."""

import pytest

from repro.algorithms import (
    BakeryLock,
    BarDavidLock,
    LamportFastLock,
    mutex_session,
)
from repro.sim import (
    AsynchronousTiming,
    ConstantTiming,
    Engine,
    PidOrderTieBreak,
    RunStatus,
    UniformTiming,
)
from repro.spec import check_mutual_exclusion, check_starvation, max_bypass


def make(n):
    return BarDavidLock(LamportFastLock(n), n)


def run(lock, n, sessions=3, timing=None, cs=0.2, ncs=0.3, max_time=100_000.0,
        tie=None):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.4), max_time=max_time,
                 tie_break=tie)
    for pid in range(n):
        eng.spawn(
            mutex_session(lock, pid, sessions, cs_duration=cs, ncs_duration=ncs),
            pid=pid,
        )
    return eng.run()


def test_exclusion_inherited_from_inner():
    res = run(make(4), 4, sessions=3, timing=UniformTiming(0.05, 0.95, seed=2))
    assert res.status is RunStatus.COMPLETED
    assert check_mutual_exclusion(res.trace) == []


def test_starvation_free_under_heavy_asynchrony():
    n = 4
    res = run(
        make(n), n, sessions=4,
        timing=AsynchronousTiming(base=0.3, tail_prob=0.35, seed=7),
        max_time=300_000.0,
    )
    assert res.status is RunStatus.COMPLETED
    starved, _ = check_starvation(res.trace, bypass_bound=6 * n)
    assert starved == []


@pytest.mark.parametrize("seed", range(6))
def test_bounded_bypass_many_seeds(seed):
    n = 3
    res = run(make(n), n, sessions=4, timing=UniformTiming(0.05, 1.0, seed=seed))
    assert res.status is RunStatus.COMPLETED
    worst, _ = max_bypass(res.trace)
    # The gate hands the turn around cyclically: generous bound 4n.
    assert worst <= 4 * n, worst


def test_solo_exit_is_constant_step():
    """The contention hint keeps the uncontended exit O(1) — no scan."""
    def exit_steps(n):
        lock = make(n)
        eng = Engine(delta=1.0, timing=ConstantTiming(0.4))
        eng.spawn(mutex_session(lock, 0, sessions=1), pid=0)
        res = eng.run()
        (span,) = res.trace.exit_spans(0)
        return len(
            [e for e in res.trace.for_pid(0)
             if e.is_shared and span[1] < e.completed <= span[2]]
        )

    assert exit_steps(4) == exit_steps(64)


def test_solo_entry_is_constant_step():
    def entry_steps(n):
        lock = make(n)
        eng = Engine(delta=1.0, timing=ConstantTiming(0.4))
        eng.spawn(mutex_session(lock, 0, sessions=1), pid=0)
        res = eng.run()
        (span,) = res.trace.entry_spans(0)
        return len(
            [e for e in res.trace.for_pid(0)
             if e.is_shared and span[1] < e.completed <= span[2]]
        )

    assert entry_steps(4) == entry_steps(64)


def test_wrapping_a_starvation_free_inner_also_works():
    n = 3
    lock = BarDavidLock(BakeryLock(n), n)
    res = run(lock, n, sessions=2)
    assert res.status is RunStatus.COMPLETED
    assert check_mutual_exclusion(res.trace) == []


def test_requires_deadlock_free_inner():
    class Fake(LamportFastLock):
        @property
        def properties(self):
            from repro.algorithms.base import MutexProperties

            return MutexProperties(deadlock_free=False)

    with pytest.raises(ValueError, match="deadlock-free"):
        BarDavidLock(Fake(2), 2)


def test_properties_fast_iff_inner_fast():
    fast = BarDavidLock(LamportFastLock(3), 3)
    assert fast.properties.fast and fast.properties.starvation_free
    slow = BarDavidLock(BakeryLock(3), 3)
    assert not slow.properties.fast and slow.properties.starvation_free


def test_adversarial_pid_priority_does_not_starve_low_priority():
    """Even with a tie-break always favoring pids 1,2 the gate serves 0."""
    n = 3
    res = run(
        make(n), n, sessions=3,
        timing=ConstantTiming(0.4),
        tie=PidOrderTieBreak([1, 2, 0]),
    )
    assert res.status is RunStatus.COMPLETED
    assert len(res.trace.cs_intervals(pid=0)) == 3
