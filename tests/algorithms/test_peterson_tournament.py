"""Tests specific to Peterson's locks and the tournament tree."""

import pytest

from repro.algorithms import FilterLock, PetersonTwoProcess, TournamentLock, mutex_session
from repro.sim import AsynchronousTiming, ConstantTiming, Engine, RunStatus, UniformTiming
from repro.spec import check_mutual_exclusion, max_bypass
from repro.verify import MutualExclusionProperty, explore


def run(lock, n, sessions=3, timing=None, max_time=100_000.0):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.4), max_time=max_time)
    for pid in range(n):
        eng.spawn(mutex_session(lock, pid, sessions, cs_duration=0.2,
                                ncs_duration=0.2), pid=pid)
    return eng.run()


class TestPetersonTwoProcess:
    def test_bypass_bound_one(self):
        lock = PetersonTwoProcess()
        res = run(lock, 2, sessions=5, timing=UniformTiming(0.05, 1.0, seed=4))
        assert res.status is RunStatus.COMPLETED
        worst, _ = max_bypass(res.trace)
        assert worst <= 2  # Peterson's bound is 1; sessions add slack

    def test_exhaustively_safe(self):
        lock = PetersonTwoProcess()
        res = explore(
            {pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
             for pid in (0, 1)},
            [MutualExclusionProperty()],
            max_ops=25,
        )
        assert res.ok and res.complete

    def test_exhaustively_safe_two_sessions_bounded(self):
        """Lock reuse explored to a per-process bound (space is too large
        for a complete pass; bounded safety still covers every prefix)."""
        lock = PetersonTwoProcess()
        res = explore(
            {pid: (lambda p: mutex_session(lock, p, sessions=2, cs_duration=1.0))
             for pid in (0, 1)},
            [MutualExclusionProperty()],
            max_ops=18,
        )
        assert res.ok

    def test_three_registers(self):
        lock = PetersonTwoProcess()
        res = run(lock, 2, sessions=2)
        assert res.memory.register_count == 3

    def test_pid_range(self):
        with pytest.raises(ValueError):
            list(PetersonTwoProcess().entry(2))


class TestFilterLock:
    def test_levels_filter_contention(self):
        n = 4
        lock = FilterLock(n)
        res = run(lock, n, sessions=2)
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    def test_single_process_passes_all_levels(self):
        lock = FilterLock(5)
        res = run(lock, 1, sessions=1)
        # 4 levels x (level write + victim write + victim read + scan) ~ O(n^2)
        assert res.status is RunStatus.COMPLETED
        assert len(res.trace.cs_intervals()) == 1

    def test_solo_cost_quadratic_shape(self):
        def steps(n):
            lock = FilterLock(n)
            res = run(lock, 1, sessions=1)
            return res.trace.shared_step_count(0)

        assert steps(8) > 2 * steps(4)

    def test_exclusion_under_asynchrony(self):
        lock = FilterLock(3)
        res = run(lock, 3, timing=AsynchronousTiming(0.3, 0.25, seed=6),
                  max_time=300_000.0)
        assert check_mutual_exclusion(res.trace) == []


class TestTournament:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_exclusion_all_sizes(self, n):
        lock = TournamentLock(n)
        res = run(lock, n, sessions=2, timing=UniformTiming(0.05, 1.0, seed=n))
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    def test_path_lengths_logarithmic(self):
        lock = TournamentLock(8)
        assert len(lock._path(0)) == 3
        lock2 = TournamentLock(16)
        assert len(lock2._path(5)) == 4

    def test_paths_distinct_leaves(self):
        n = 8
        lock = TournamentLock(n)
        leaves = {tuple(lock._path(pid)) for pid in range(n)}
        assert len(leaves) == n

    def test_solo_entry_log_steps(self):
        def steps(n):
            lock = TournamentLock(n)
            res = run(lock, 1, sessions=1)
            return res.trace.shared_step_count(0)

        # Θ(log n): quadrupling n adds a constant number of levels.
        assert steps(16) - steps(4) <= steps(4)

    def test_exhaustively_safe_n2(self):
        lock = TournamentLock(2)
        res = explore(
            {pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
             for pid in (0, 1)},
            [MutualExclusionProperty()],
            max_ops=25,
        )
        assert res.ok and res.complete

    def test_bounded_bypass(self):
        n = 4
        lock = TournamentLock(n)
        res = run(lock, n, sessions=4, timing=UniformTiming(0.05, 1.0, seed=9))
        worst, _ = max_bypass(res.trace)
        assert worst <= 3 * n
