"""Tests for read-modify-write primitives and the algorithms over them."""

import pytest

from repro.algorithms import CasConsensus, TicketLock, mutex_session
from repro.algorithms import TestAndSetLock as TasLock  # avoid pytest collection
from repro.core.mutex import TimeResilientMutex
from repro.sim import (
    AsynchronousTiming,
    ConstantTiming,
    Engine,
    RandomTieBreak,
    Register,
    RunStatus,
    UniformTiming,
    compare_and_swap,
    fetch_and_add,
    get_and_set,
)
from repro.sim.registers import Memory, RegisterNamespace
from repro.spec import check_consensus, check_mutual_exclusion, check_starvation
from repro.verify import MutualExclusionProperty, explore


class TestPrimitives:
    def test_cas_success_and_failure(self):
        mem = Memory()
        r = Register("c", 0)
        assert mem.rmw(r, compare_and_swap(r, 0, 5).transform) is True
        assert mem.peek(r) == 5
        assert mem.rmw(r, compare_and_swap(r, 0, 9).transform) is False
        assert mem.peek(r) == 5

    def test_faa_returns_old(self):
        mem = Memory()
        r = Register("c", 10)
        assert mem.rmw(r, fetch_and_add(r, 3).transform) == 10
        assert mem.peek(r) == 13

    def test_gas_swaps(self):
        mem = Memory()
        r = Register("c", "a")
        assert mem.rmw(r, get_and_set(r, "b").transform) == "a"
        assert mem.peek(r) == "b"

    def test_rmw_counts_as_read_and_write(self):
        mem = Memory()
        r = Register("c", 0)
        mem.rmw(r, fetch_and_add(r).transform)
        assert mem.read_count == 1 and mem.write_count == 1

    def test_engine_executes_rmw_atomically(self):
        """Concurrent FAAs never lose updates (unlike read-then-write)."""
        counter = Register("n", 0)

        def incrementer(pid):
            old = yield fetch_and_add(counter, 1)
            return old

        eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
        for pid in range(4):
            eng.spawn(incrementer(pid), pid=pid)
        res = eng.run()
        assert res.memory.peek(counter) == 4
        assert sorted(res.returns.values()) == [0, 1, 2, 3]

    def test_rmw_marked_as_shared_step_in_trace(self):
        counter = Register("n", 0)

        def prog(pid):
            yield fetch_and_add(counter, 1)

        eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
        eng.spawn(prog(0))
        res = eng.run()
        assert res.trace.shared_step_count(0) == 1
        assert res.trace.events[0].kind == "rmw"


class TestTicketLock:
    def run(self, lock, n, sessions=3, timing=None):
        eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.4),
                     max_time=100_000.0)
        for pid in range(n):
            eng.spawn(mutex_session(lock, pid, sessions, cs_duration=0.2,
                                    ncs_duration=0.1), pid=pid)
        return eng.run()

    def test_exclusion_and_fifo(self):
        lock = TicketLock()
        res = self.run(lock, 4)
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []
        starved, worst = check_starvation(res.trace, bypass_bound=8)
        assert starved == []

    def test_exclusion_asynchronous(self):
        lock = TicketLock()
        res = self.run(lock, 3, timing=AsynchronousTiming(0.3, 0.3, seed=2))
        assert check_mutual_exclusion(res.trace) == []

    def test_uncontended_constant_steps(self):
        lock = TicketLock()
        res = self.run(lock, 1, sessions=1)
        assert res.trace.shared_step_count(0) <= 4

    def test_as_embedded_lock_in_algorithm3(self):
        """The paper's 'simple fast SF algorithm with stronger primitives'
        plugged straight into Algorithm 3."""
        ns = RegisterNamespace("a3ticket")
        lock = TimeResilientMutex(TicketLock(namespace=ns.child("A")),
                                  delta=1.0, namespace=ns.child("door"))
        res = self.run(lock, 4)
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    def test_model_checked_exclusion(self):
        lock = TicketLock(namespace=RegisterNamespace("mc_ticket"))
        res = explore(
            {pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
             for pid in range(2)},
            [MutualExclusionProperty()],
            max_ops=20,
        )
        assert res.ok and res.complete


class TestTestAndSetLock:
    def test_exclusion(self):
        lock = TasLock()
        eng = Engine(delta=1.0, timing=UniformTiming(0.1, 1.0, seed=5),
                     max_time=100_000.0)
        for pid in range(3):
            eng.spawn(mutex_session(lock, pid, 3, cs_duration=0.2,
                                    ncs_duration=0.1), pid=pid)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    def test_backoff_does_not_affect_safety(self):
        for backoff in (0.0, 0.1, 5.0):
            lock = TasLock(backoff=backoff,
                                  namespace=RegisterNamespace(("tb", backoff)))
            eng = Engine(delta=1.0, timing=ConstantTiming(0.4), max_time=50_000.0)
            for pid in range(3):
                eng.spawn(mutex_session(lock, pid, 2, cs_duration=0.3), pid=pid)
            res = eng.run()
            assert check_mutual_exclusion(res.trace) == []

    def test_single_register(self):
        assert TasLock().register_count(64) == 1

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError):
            TasLock(backoff=-1)


class TestCasConsensus:
    def test_agreement_any_timing(self):
        for seed in range(5):
            algo = CasConsensus(namespace=RegisterNamespace(("cc", seed)))
            eng = Engine(delta=1.0,
                         timing=AsynchronousTiming(0.3, 0.4, seed=seed),
                         tie_break=RandomTieBreak(seed))
            inputs = {0: 0, 1: 1, 2: 1}
            for pid, v in inputs.items():
                eng.spawn(algo.propose(pid, v), pid=pid)
            res = eng.run()
            v = check_consensus(res, inputs)
            assert v.ok, (seed, v)

    def test_constant_steps(self):
        algo = CasConsensus()
        eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
        eng.spawn(algo.propose(0, 1), pid=0)
        res = eng.run()
        assert res.trace.shared_step_count(0) == 2

    def test_rejects_none(self):
        with pytest.raises(ValueError):
            list(CasConsensus().propose(0, None))
