"""compare: verdicts, gating rules, exit codes, threshold parsing."""

import copy

import pytest

from repro.bench import compare_documents, parse_ratio
from repro.bench.compare import EXIT_FAIL, EXIT_OK


def doc(wall=1.0, events=100, extra_scenario=False):
    scenarios = {
        "engine/pingpong": {
            "counters": {"events": events, "shared_steps": 50},
            "wall_time_s": wall,
        }
    }
    if extra_scenario:
        scenarios["experiments/e1"] = {
            "counters": {"events": 7},
            "wall_time_s": 0.5,
        }
    return {"schema": 1, "kind": "repro.bench", "mode": "quick",
            "scenarios": scenarios}


def verdict_of(report, name="engine/pingpong"):
    return next(s for s in report.scenarios if s.name == name).verdict


class TestVerdicts:
    def test_identical_documents_are_ok(self):
        report = compare_documents(doc(), copy.deepcopy(doc()))
        assert verdict_of(report) == "ok"
        assert report.exit_code() == EXIT_OK

    def test_counter_change_is_drift_regardless_of_direction(self):
        for delta in (+1, -1):
            report = compare_documents(doc(events=100), doc(events=100 + delta))
            assert verdict_of(report) == "drift"
            assert report.exit_code() == EXIT_FAIL

    def test_drift_lists_the_changed_counters(self):
        report = compare_documents(doc(events=100), doc(events=93))
        (comparison,) = report.counter_failures
        (drift,) = comparison.drifts
        assert (drift.counter, drift.old, drift.new) == ("events", 100, 93)

    def test_wall_regression_warns_but_does_not_gate_by_default(self):
        report = compare_documents(doc(wall=1.0), doc(wall=1.5))
        assert verdict_of(report) == "regression"
        assert report.exit_code() == EXIT_OK
        assert report.exit_code(fail_on_wall=True) == EXIT_FAIL

    def test_wall_improvement_detected(self):
        report = compare_documents(doc(wall=1.0), doc(wall=0.5))
        assert verdict_of(report) == "improvement"
        assert report.exit_code(fail_on_wall=True) == EXIT_OK

    def test_wall_within_threshold_is_ok(self):
        report = compare_documents(doc(wall=1.0), doc(wall=1.15))
        assert verdict_of(report) == "ok"

    def test_threshold_is_configurable(self):
        report = compare_documents(doc(wall=1.0), doc(wall=1.15),
                                   max_regression=0.1)
        assert verdict_of(report) == "regression"

    def test_drift_beats_wall_regression(self):
        report = compare_documents(doc(events=100, wall=1.0),
                                   doc(events=99, wall=9.0))
        assert verdict_of(report) == "drift"

    def test_missing_scenario_fails_new_scenario_informs(self):
        report = compare_documents(doc(extra_scenario=True), doc())
        assert verdict_of(report, "experiments/e1") == "missing"
        assert report.exit_code() == EXIT_FAIL

        report = compare_documents(doc(), doc(extra_scenario=True))
        assert verdict_of(report, "experiments/e1") == "new"
        assert report.exit_code() == EXIT_OK

    def test_malformed_document_rejected(self):
        with pytest.raises(ValueError):
            compare_documents({"schema": 1}, doc())

    def test_render_mentions_every_scenario(self):
        report = compare_documents(doc(extra_scenario=True),
                                   doc(events=99))
        text = report.render()
        assert "engine/pingpong" in text and "experiments/e1" in text
        assert "DRIFT" in text and "MISSING" in text


class TestParseRatio:
    @pytest.mark.parametrize("text,expected", [
        ("20%", 0.2), ("0.2", 0.2), (" 5% ", 0.05), ("1.5", 1.5), ("0", 0.0),
    ])
    def test_accepted(self, text, expected):
        assert parse_ratio(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["twenty", "%", "-5%", "-0.1"])
    def test_rejected(self, text):
        with pytest.raises(ValueError):
            parse_ratio(text)
