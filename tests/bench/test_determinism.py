"""Counter determinism: the property the whole perf gate rests on."""

import pytest

from repro.bench import get_scenario, make_document, run_scenario, scenario_names
from repro.bench.runner import render_document

# Cheap scenarios only — the full quick sweep is the CI bench job's work.
CHEAP = [
    "engine/pingpong",
    "engine/contention",
    "engine/delays_crashes",
    "explorer/fischer_n2",
    "experiments/e4_fastpath",
]


@pytest.mark.parametrize("name", CHEAP)
def test_two_runs_identical_counters(name):
    scenario = get_scenario(name)
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    assert first.counters == second.counters


def test_counter_sections_serialize_byte_identical():
    scenario = get_scenario("engine/pingpong")
    docs = [
        make_document([run_scenario(scenario)], "quick") for _ in range(2)
    ]
    for doc in docs:
        doc["scenarios"]["engine/pingpong"].pop("wall_time_s")
    assert render_document(docs[0]) == render_document(docs[1])


def test_repeats_take_best_wall_and_verify_counters():
    result = run_scenario(get_scenario("engine/contention"), repeats=3)
    assert result.counters["shared_steps"] == 720
    with pytest.raises(ValueError):
        run_scenario(get_scenario("engine/contention"), repeats=0)


def test_repeat_counter_mismatch_raises():
    from repro.bench.scenarios import Scenario

    ticks = []

    def flaky():
        ticks.append(None)
        return {"ticks": len(ticks)}  # grows across repetitions

    scenario = Scenario("flaky", "nondeterministic on purpose", True, flaky)
    with pytest.raises(RuntimeError, match="different counters"):
        run_scenario(scenario, repeats=2)


def test_scenario_counters_nonempty_and_integral():
    result = run_scenario(get_scenario("engine/pingpong"))
    assert result.counters["events"] > 0
    assert all(isinstance(v, int) for v in result.counters.values())
    assert result.wall_time_s > 0


def test_explorer_scenario_reports_state_counts():
    result = run_scenario(get_scenario("explorer/fischer_n2"))
    assert result.counters["explorer_states"] > 0
    assert result.counters["explorer_violations"] > 0  # Fischer breaks


def test_quick_is_a_subset_of_full():
    quick, full = scenario_names("quick"), scenario_names("full")
    assert set(quick) < set(full)
    assert len(quick) >= 5


def test_unknown_mode_and_scenario_rejected():
    with pytest.raises(ValueError):
        scenario_names("nightly")
    with pytest.raises(KeyError):
        get_scenario("engine/nope")
