"""Engine/Memory instrumentation: correct counts, zero-cost when off."""

from repro.sim import (
    ConstantTiming,
    Engine,
    EngineProbe,
    active_probe,
    probe_scope,
)
from repro.sim.ops import fetch_and_add
from repro.sim.registers import Array, Memory, Register


def _pingpong(reg, rounds):
    for _ in range(rounds):
        value = yield reg.read()
        yield reg.write(value + 1)


def _run(n=4, rounds=10, probe=None):
    slots = Array("slot", 0)
    engine = Engine(delta=1.0, timing=ConstantTiming(0.5), probe=probe)
    for pid in range(n):
        engine.spawn(_pingpong(slots[pid], rounds), pid=pid)
    return engine.run(), engine


class TestDisabledFastPath:
    def test_probe_is_off_by_default(self):
        engine = Engine(delta=1.0, timing=ConstantTiming(0.5))
        assert engine._probe is None
        assert active_probe() is None

    def test_run_identical_with_and_without_probe(self):
        bare, _ = _run()
        probed, _ = _run(probe=EngineProbe())
        assert len(bare.trace) == len(probed.trace)
        assert bare.end_time == probed.end_time
        assert bare.memory.snapshot() == probed.memory.snapshot()
        assert bare.returns == probed.returns


class TestCounts:
    def test_exact_counts_on_known_workload(self):
        probe = EngineProbe()
        result, _ = _run(n=4, rounds=10, probe=probe)
        assert result.completed
        snap = probe.snapshot()
        # 4 procs x 10 rounds x (read + write) shared ops, plus a start
        # event per process; every op completion is one heap push/pop.
        assert snap["runs"] == 1
        assert snap["shared_steps"] == 80
        assert snap["reads"] == 40
        assert snap["writes"] == 40
        assert snap["rmws"] == 0
        assert snap["registers_touched"] == 4
        assert snap["events"] == snap["heap_pushes"] == 84
        assert snap["ops_linearized"] == 80
        assert snap["trace_events"] == len(result.trace)

    def test_rmw_counted_by_memory_and_probe(self):
        reg = Register("ctr", 0)

        def bump(pid):
            yield fetch_and_add(reg, 1)

        probe = EngineProbe()
        engine = Engine(delta=1.0, timing=ConstantTiming(0.5), probe=probe)
        for pid in range(3):
            engine.spawn(bump(pid), pid=pid)
        result = engine.run()
        assert result.memory.rmw_count == 3
        assert probe.snapshot()["rmws"] == 3
        # rmw still counts one read + one write each, as before.
        assert result.memory.read_count == 3
        assert result.memory.write_count == 3

    def test_memory_rmw_count_standalone(self):
        memory = Memory()
        reg = Register("x", 0)
        memory.rmw(reg, lambda old: (old + 1, old))
        memory.write(reg, 5)
        assert memory.rmw_count == 1
        assert memory.read_count == 1
        assert memory.write_count == 2


class TestProbeScope:
    def test_engines_in_scope_attach_and_aggregate(self):
        probe = EngineProbe()
        with probe_scope(probe):
            _run(n=2, rounds=3)
            _run(n=2, rounds=3)
        assert probe.runs == 2
        assert probe.shared_steps == 24
        assert active_probe() is None

    def test_scope_restores_previous_probe(self):
        outer, inner = EngineProbe(), EngineProbe()
        with probe_scope(outer):
            with probe_scope(inner):
                _run(n=1, rounds=1)
            assert active_probe() is outer
            _run(n=1, rounds=1)
        assert inner.runs == 1
        assert outer.runs == 1

    def test_explicit_probe_wins_over_scope(self):
        ambient, explicit = EngineProbe(), EngineProbe()
        with probe_scope(ambient):
            _run(n=1, rounds=1, probe=explicit)
        assert explicit.runs == 1
        assert ambient.runs == 0

    def test_reset_zeroes_everything(self):
        probe = EngineProbe()
        _run(probe=probe)
        probe.reset()
        assert all(v == 0 for v in probe.snapshot().values())
