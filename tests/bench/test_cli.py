"""End-to-end CLI: run documents, the baseline gate, usage errors."""

import io
import json

from repro.bench.cli import main


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(list(argv), out=out, err=err)
    return code, out.getvalue(), err.getvalue()


def test_list_names_every_scenario():
    code, out, _ = run_cli("list")
    assert code == 0
    assert "engine/pingpong" in out and "[quick]" in out and "[full ]" in out


def test_run_only_writes_document(tmp_path):
    path = tmp_path / "bench.json"
    code, out, _ = run_cli("run", "--quick", "--only", "engine/pingpong",
                           "--json", str(path))
    assert code == 0
    doc = json.loads(path.read_text())
    assert doc["kind"] == "repro.bench"
    assert set(doc["scenarios"]) == {"engine/pingpong"}
    counters = doc["scenarios"]["engine/pingpong"]["counters"]
    assert counters["events"] > 0
    assert "engine/pingpong" in out


def test_run_unknown_scenario_is_usage_error(tmp_path):
    code, _, err = run_cli("run", "--only", "engine/nope")
    assert code == 2
    assert "unknown scenario" in err


def test_compare_clean_and_injected_regression(tmp_path):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    for path in (old, new):
        code, _, _ = run_cli("run", "--only", "engine/contention",
                             "--json", str(path))
        assert code == 0

    code, out, _ = run_cli("compare", str(old), str(new))
    assert code == 0, out

    # Inject a counter regression: the gate must trip.
    doc = json.loads(new.read_text())
    doc["scenarios"]["engine/contention"]["counters"]["shared_steps"] += 1
    new.write_text(json.dumps(doc))
    code, out, err = run_cli("compare", str(old), str(new))
    assert code == 1
    assert "DRIFT" in out and "engine/contention" in err


def test_compare_bad_threshold_and_missing_file(tmp_path):
    good = tmp_path / "good.json"
    run_cli("run", "--only", "engine/pingpong", "--json", str(good))
    code, _, err = run_cli("compare", str(good), str(good),
                           "--max-regression", "lots")
    assert code == 2 and "threshold" in err
    code, _, err = run_cli("compare", str(tmp_path / "nope.json"), str(good))
    assert code == 2 and "cannot read" in err


def test_committed_baseline_has_all_quick_scenarios():
    """BENCH_core.json stays in sync with the quick scenario set."""
    from pathlib import Path

    from repro.bench import scenario_names

    root = Path(__file__).resolve().parents[2]
    doc = json.loads((root / "BENCH_core.json").read_text())
    assert doc["mode"] == "quick"
    assert set(doc["scenarios"]) == set(scenario_names("quick"))
    for entry in doc["scenarios"].values():
        assert entry["counters"] and entry["wall_time_s"] > 0
