"""Property tests: fuzzed delivery schedules for the mp layer.

The fixed-schedule tests in ``test_channels.py`` pin one timing model per
property; these fuzz the schedule space instead — random jitter, random
timing-failure windows, random workload shapes — and assert the channel
invariants that must survive *any* timing behaviour:

* **FIFO**: per ordered pair, messages arrive in send order;
* **no loss / no duplication**: every message sent is received exactly
  once (mailboxes are reliable by construction; the property checks the
  register emulation preserves that under stretched schedules).

Every draw derives from ``random.Random(seed)`` with the seed in the test
id, so a failure replays exactly.
"""

import random

import pytest

from repro.mp import Network, OmegaElection, eventual_agreement
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    RunStatus,
    UniformTiming,
    failure_window,
)

CHANNEL_SEEDS = range(20)
OMEGA_SEEDS = range(5)


def _fuzzed_timing(rng, pids):
    """Uniform jitter, optionally wrapped in 1-2 timing-failure windows."""
    lo = rng.uniform(0.02, 0.3)
    base = UniformTiming(lo, lo + rng.uniform(0.1, 0.9), seed=rng.randrange(10_000))
    if rng.random() < 0.7:
        windows = []
        start = rng.uniform(0.0, 4.0)
        for _ in range(rng.randrange(1, 3)):
            end = start + rng.uniform(1.0, 8.0)
            victims = rng.sample(pids, rng.randrange(1, len(pids) + 1))
            windows.append(
                failure_window(start, end, pids=victims,
                               stretch=rng.uniform(5.0, 40.0))
            )
            start = end + rng.uniform(0.0, 3.0)
        return FailureWindowTiming(base, windows)
    return base


@pytest.mark.parametrize("seed", CHANNEL_SEEDS)
def test_channels_fifo_no_loss_under_fuzzed_schedules(seed):
    rng = random.Random(f"mp-channels:{seed}")
    senders = rng.randrange(1, 4)
    receiver = senders  # pids 0..senders-1 send, the last pid receives
    n = senders + 1
    counts = {pid: rng.randrange(1, 8) for pid in range(senders)}
    net = Network(n)

    def sender(pid):
        endpoint = net.endpoint(pid)
        for i in range(counts[pid]):
            yield from endpoint.send(receiver, (pid, i))

    def sink(pid):
        endpoint = net.endpoint(pid)
        got = []
        while len(got) < sum(counts.values()):
            inbox = yield from endpoint.poll()
            got.extend(inbox)
        return got

    engine = Engine(
        delta=1.0,
        timing=_fuzzed_timing(rng, list(range(n))),
        max_time=50_000.0,
    )
    for pid in range(senders):
        engine.spawn(sender(pid), pid=pid)
    engine.spawn(sink(receiver), pid=receiver)
    result = engine.run()

    assert result.status is RunStatus.COMPLETED
    inbox = result.returns[receiver]
    for pid in range(senders):
        from_pid = [message for sender_pid, message in inbox
                    if sender_pid == pid]
        # One equality carries FIFO, no-loss and no-duplication at once.
        assert from_pid == [(pid, i) for i in range(counts[pid])]


@pytest.mark.parametrize("seed", OMEGA_SEEDS)
def test_omega_converges_after_fuzzed_failure_injection(seed):
    """Ω's contract under combined crash + timing-failure injection: the
    survivors eventually agree on the smallest live pid, however the
    window parameters fall."""
    rng = random.Random(f"mp-omega:{seed}")
    n = 3
    rounds = 50
    omega = OmegaElection(n, heartbeat_period=1.0, initial_timeout=2.5,
                          timeout_growth=2.0)
    crash_at = rng.uniform(3.0, 8.0)
    window = failure_window(
        crash_at + rng.uniform(1.0, 4.0),
        crash_at + rng.uniform(6.0, 12.0),
        pids=[1],
        stretch=rng.uniform(20.0, 60.0),
    )
    engine = Engine(
        delta=1.0,
        timing=FailureWindowTiming(ConstantTiming(0.1), [window]),
        crashes=CrashSchedule(at_time={0: crash_at}),
        max_time=50_000.0,
    )
    for pid in range(n):
        engine.spawn(omega.run(pid, rounds), pid=pid)
    result = engine.run()

    survivors = {pid: samples for pid, samples in result.returns.items()
                 if pid != 0}
    assert set(survivors) == {1, 2}
    # After the crash of pid 0 and the close of pid 1's stretched window,
    # adaptive timeouts settle and both survivors elect pid 1.
    assert eventual_agreement(survivors, tail_fraction=0.2) == 1
