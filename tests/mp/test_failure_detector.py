"""Tests for the heartbeat failure detector and Ω-style election."""

import pytest

from repro.mp import HeartbeatMonitor, OmegaElection, eventual_agreement
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    failure_window,
)


def run_omega(omega, n, rounds, timing=None, crashes=None, max_time=50_000.0):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.1),
                 crashes=crashes, max_time=max_time)
    for pid in range(n):
        eng.spawn(omega.run(pid, rounds), pid=pid)
    res = eng.run()
    return res, dict(res.returns)


class TestHeartbeatMonitor:
    def test_initially_trusting(self):
        m = HeartbeatMonitor(0, {1, 2}, initial_timeout=2.0)
        assert m.suspected == set()
        assert m.leader() == 0

    def test_suspicion_after_timeout(self):
        m = HeartbeatMonitor(2, {0, 1}, initial_timeout=2.0)
        m.update_suspicions(now=5.0)
        assert m.suspected == {0, 1}
        assert m.leader() == 2

    def test_heartbeat_refreshes(self):
        m = HeartbeatMonitor(2, {0}, initial_timeout=2.0)
        m.observe_heartbeat(0, now=4.0)
        m.update_suspicions(now=5.0)
        assert m.suspected == set()
        assert m.leader() == 0

    def test_false_suspicion_grows_timeout(self):
        m = HeartbeatMonitor(1, {0}, initial_timeout=2.0, timeout_growth=2.0)
        m.update_suspicions(now=3.0)
        assert m.suspected == {0}
        m.observe_heartbeat(0, now=4.0)
        assert m.suspected == set()
        assert m.timeout[0] == 4.0
        assert m.false_suspicions == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(0, {1}, initial_timeout=0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(0, {1}, initial_timeout=1, timeout_growth=1.0)


class TestOmegaClean:
    def test_everyone_elects_lowest_pid(self):
        n = 4
        omega = OmegaElection(n, heartbeat_period=1.0, initial_timeout=3.0)
        res, samples = run_omega(omega, n, rounds=10)
        leader = eventual_agreement(samples)
        assert leader == 0

    def test_crashed_lowest_pid_is_replaced(self):
        n = 4
        omega = OmegaElection(n, heartbeat_period=1.0, initial_timeout=3.0)
        res, samples = run_omega(
            omega, n, rounds=25,
            crashes=CrashSchedule(at_time={0: 5.0}),
        )
        survivors = {pid: s for pid, s in samples.items() if pid != 0}
        leader = eventual_agreement(survivors)
        assert leader == 1

    def test_solo_process_elects_itself(self):
        omega = OmegaElection(3, heartbeat_period=1.0, initial_timeout=2.0)
        res, samples = run_omega(omega, 1, rounds=8)
        assert all(s.leader == 0 for s in samples[0][2:])


class TestOmegaUnderTimingFailures:
    def test_convergence_after_window(self):
        """The resilience shape for Ω: churn during the window, agreement
        after — with the adaptive timeout preventing repeat churn."""
        n = 3
        omega = OmegaElection(n, heartbeat_period=1.0, initial_timeout=2.5,
                              timeout_growth=2.0)
        timing = FailureWindowTiming(
            ConstantTiming(0.1),
            [failure_window(5.0, 15.0, pids=[0], stretch=60.0)],
        )
        res, samples = run_omega(omega, n, rounds=60, timing=timing)
        leader = eventual_agreement(samples, tail_fraction=0.2)
        assert leader == 0  # pid 0 survived; after adaptation it leads again

    def test_suspicion_churn_happens_during_window(self):
        n = 3
        omega = OmegaElection(n, heartbeat_period=1.0, initial_timeout=2.5)
        timing = FailureWindowTiming(
            ConstantTiming(0.1),
            [failure_window(5.0, 15.0, pids=[0], stretch=60.0)],
        )
        res, samples = run_omega(omega, n, rounds=60, timing=timing)
        # Someone suspected pid 0 at some point (the window's footprint).
        suspected_zero = any(
            0 in s.suspected
            for pid in (1, 2)
            for s in samples.get(pid, [])
        )
        assert suspected_zero
