"""Tests for the message-passing emulation."""

import pytest

from repro.mp import Network
from repro.sim import ConstantTiming, Engine, RunStatus, UniformTiming


def run(programs, timing=None, max_time=50_000.0):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.3),
                 max_time=max_time)
    for pid, prog in programs.items():
        eng.spawn(prog, pid=pid)
    return eng.run()


class TestMailbox:
    def test_send_receive_roundtrip(self):
        net = Network(2)

        def sender(pid):
            endpoint = net.endpoint(0)
            yield from endpoint.send(1, "hello")
            yield from endpoint.send(1, "world")

        def receiver(pid):
            endpoint = net.endpoint(1)
            got = []
            while len(got) < 2:
                inbox = yield from endpoint.poll()
                got.extend(m for _, m in inbox)
            return got

        res = run({0: sender(0), 1: receiver(1)})
        assert res.status is RunStatus.COMPLETED
        assert res.returns[1] == ["hello", "world"]

    def test_fifo_per_channel(self):
        net = Network(2)
        count = 10

        def sender(pid):
            endpoint = net.endpoint(0)
            for i in range(count):
                yield from endpoint.send(1, i)

        def receiver(pid):
            endpoint = net.endpoint(1)
            got = []
            while len(got) < count:
                inbox = yield from endpoint.poll()
                got.extend(m for _, m in inbox)
            return got

        res = run({0: sender(0), 1: receiver(1)},
                  timing=UniformTiming(0.05, 1.0, seed=2))
        assert res.returns[1] == list(range(count))

    def test_broadcast_reaches_everyone(self):
        n = 4
        net = Network(n)

        def caster(pid):
            endpoint = net.endpoint(0)
            yield from endpoint.broadcast("ping")

        def listener(pid):
            endpoint = net.endpoint(pid)
            while True:
                inbox = yield from endpoint.poll()
                if inbox:
                    return inbox

        programs = {0: caster(0)}
        programs.update({p: listener(p) for p in range(1, n)})
        res = run(programs)
        for p in range(1, n):
            assert res.returns[p] == [(0, "ping")]

    def test_channels_are_independent(self):
        net = Network(3)

        def sender(pid, dest, msg):
            endpoint = net.endpoint(pid)
            yield from endpoint.send(dest, msg)

        def receiver(pid):
            endpoint = net.endpoint(pid)
            while True:
                inbox = yield from endpoint.poll()
                if inbox:
                    return inbox

        res = run({
            0: sender(0, 2, "a"),
            1: sender(1, 2, "b"),
            2: receiver(2),
        })
        senders = {s for s, _ in res.returns[2]}
        # Receiver may catch one or both in the first nonempty poll.
        assert senders <= {0, 1} and senders

    def test_endpoint_validation(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.endpoint(5)
        with pytest.raises(ValueError):
            Network(0)

    def test_no_self_mailbox(self):
        net = Network(2)
        with pytest.raises(KeyError):
            net.mailbox(1, 1)
