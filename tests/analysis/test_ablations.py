"""Unit tests for the ablated variants and the population metric."""

import pytest

from repro.algorithms import BarDavidLock, LamportFastLock, mutex_session
from repro.analysis.ablations import (
    AlwaysScanBarDavid,
    NoDelayMutex,
    NoResetMutex,
    embedded_population,
)
from repro.core.mutex import TimeResilientMutex
from repro.sim import ConstantTiming, Engine, UniformTiming
from repro.sim.registers import RegisterNamespace
from repro.spec import check_mutual_exclusion


def build(cls, n, key):
    ns = RegisterNamespace(("abl", key))
    inner = BarDavidLock(LamportFastLock(n, namespace=ns.child("lf")), n,
                         namespace=ns.child("gate"))
    return cls(inner, delta=1.0, namespace=ns.child("door"))


def run(lock, n, sessions=3, timing=None, max_time=50_000.0):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.4),
                 max_time=max_time)
    for pid in range(n):
        eng.spawn(mutex_session(lock, pid, sessions, cs_duration=0.3,
                                ncs_duration=0.2), pid=pid)
    return eng.run()


class TestAblatedVariantsStillSafe:
    """The ablations break liveness/efficiency properties, never exclusion."""

    @pytest.mark.parametrize("cls", [NoResetMutex, NoDelayMutex])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_exclusion_held(self, cls, seed):
        lock = build(cls, 3, (cls.__name__, seed))
        res = run(lock, 3, timing=UniformTiming(0.05, 1.0, seed=seed))
        assert check_mutual_exclusion(res.trace) == []

    def test_always_scan_bar_david_safe_and_fair(self):
        n = 3
        ns = RegisterNamespace("abl_scan")
        lock = AlwaysScanBarDavid(
            LamportFastLock(n, namespace=ns.child("lf")), n,
            namespace=ns.child("gate"),
        )
        res = run(lock, n, timing=UniformTiming(0.05, 1.0, seed=3))
        assert check_mutual_exclusion(res.trace) == []
        assert len(res.trace.cs_intervals()) == 9


class TestEmbeddedPopulation:
    def test_solo_population_one(self):
        lock = build(TimeResilientMutex, 2, "pop_solo")
        res = run(lock, 1, sessions=2)
        assert embedded_population(res.trace) == 1

    def test_serialized_population_one(self):
        lock = build(TimeResilientMutex, 4, "pop_serial")
        res = run(lock, 4, sessions=2)
        assert embedded_population(res.trace) == 1

    def test_no_delay_variant_leaks_population(self):
        lock = build(NoDelayMutex, 5, "pop_leak")
        res = run(lock, 5, sessions=8, timing=UniformTiming(0.05, 1.0, seed=1),
                  max_time=800.0)
        assert embedded_population(res.trace) >= 2

    def test_since_window(self):
        lock = build(TimeResilientMutex, 3, "pop_since")
        res = run(lock, 3, sessions=2)
        end = res.trace.end_time
        assert embedded_population(res.trace, since=end + 1.0) == 0
