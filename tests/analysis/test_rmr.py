"""Tests for the remote-memory-reference (local-spinning) metric."""

import pytest

from repro.analysis.metrics import rmr_count, rmr_per_cs_entry
from repro.algorithms import BakeryLock, FischerLock, mutex_session
from repro.sim import ConstantTiming, Engine, Register, read, write
from repro.sim.trace import EventKind, Trace, TraceEvent


def ev(seq, pid, kind, reg, t):
    return TraceEvent(seq=seq, pid=pid, kind=kind, issued=t, completed=t,
                      register=reg, value=0)


class TestCoherenceAccounting:
    def test_first_read_remote_repeat_local(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, "x", 1.0))
        tr.append(ev(1, 0, EventKind.READ, "x", 2.0))
        tr.append(ev(2, 0, EventKind.READ, "x", 3.0))
        assert rmr_count(tr) == 1  # one miss, then local spins

    def test_write_invalidates_other_readers(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, "x", 1.0))  # p0 remote
        tr.append(ev(1, 1, EventKind.WRITE, "x", 2.0))  # p1 remote, invalidates
        tr.append(ev(2, 0, EventKind.READ, "x", 3.0))  # p0 remote again
        assert rmr_count(tr) == 3

    def test_writer_retains_copy(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.WRITE, "x", 1.0))
        tr.append(ev(1, 0, EventKind.READ, "x", 2.0))
        assert rmr_count(tr) == 1  # the post-write read is local

    def test_every_write_remote(self):
        tr = Trace(delta=1.0)
        for i in range(3):
            tr.append(ev(i, 0, EventKind.WRITE, "x", float(i + 1)))
        assert rmr_count(tr) == 3

    def test_rmw_counts_as_write(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, "x", 1.0))
        tr.append(ev(1, 1, EventKind.RMW, "x", 2.0))
        tr.append(ev(2, 0, EventKind.READ, "x", 3.0))
        assert rmr_count(tr) == 3

    def test_pid_filter_still_applies_coherence(self):
        tr = Trace(delta=1.0)
        tr.append(ev(0, 0, EventKind.READ, "x", 1.0))
        tr.append(ev(1, 1, EventKind.WRITE, "x", 2.0))
        tr.append(ev(2, 0, EventKind.READ, "x", 3.0))
        assert rmr_count(tr, pid=0) == 2  # p1's write not counted but felt


class TestOnRealLocks:
    def _run(self, lock, n, sessions=2):
        eng = Engine(delta=1.0, timing=ConstantTiming(0.3), max_time=50_000.0)
        for pid in range(n):
            eng.spawn(mutex_session(lock, pid, sessions, cs_duration=0.3,
                                    ncs_duration=0.2), pid=pid)
        return eng.run()

    def test_spin_loops_are_mostly_local(self):
        """Fischer's await(x = 0) spins are local after the first miss."""
        res = self._run(FischerLock(delta=1.0), 3)
        total_reads = len([e for e in res.trace if e.kind == "read"])
        remote = rmr_count(res.trace)
        assert remote < total_reads  # spinning was (partly) local

    def test_rmr_per_cs_entry(self):
        res = self._run(BakeryLock(3), 3)
        per_entry = rmr_per_cs_entry(res.trace)
        assert per_entry is not None and per_entry > 0

    def test_no_cs_entries_none(self):
        tr = Trace(delta=1.0)
        assert rmr_per_cs_entry(tr) is None

    def test_bakery_doorway_scan_is_remote_linear_in_n(self):
        def solo_rmr(n):
            res = self._run(BakeryLock(n), 1, sessions=1)
            return rmr_count(res.trace)

        assert solo_rmr(16) > solo_rmr(4) + 8  # the Θ(n) doorway scan
