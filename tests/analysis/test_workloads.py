"""Tests for the workload generators."""

import pytest

from repro.sim.timing import ConstantTiming, FailureWindowTiming, UniformTiming
from repro.workloads import (
    MutexWorkload,
    arrival_times,
    consensus_inputs,
    failure_mix,
    timing_for,
)


class TestConsensusInputs:
    def test_unanimous(self):
        assert consensus_inputs(3, "unanimous0") == [0, 0, 0]
        assert consensus_inputs(3, "unanimous1") == [1, 1, 1]

    def test_split_alternates(self):
        assert consensus_inputs(4, "split") == [0, 1, 0, 1]

    def test_random_seeded(self):
        a = consensus_inputs(10, "random", seed=3)
        b = consensus_inputs(10, "random", seed=3)
        assert a == b
        assert set(a) <= {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            consensus_inputs(0)
        with pytest.raises(ValueError):
            consensus_inputs(3, "bogus")


class TestArrivals:
    def test_burst(self):
        assert arrival_times(3, "burst") == [0.0, 0.0, 0.0]

    def test_staggered(self):
        assert arrival_times(3, "staggered", spacing=2.0) == [0.0, 2.0, 4.0]

    def test_poisson_monotone_seeded(self):
        a = arrival_times(5, "poisson", spacing=1.0, seed=7)
        b = arrival_times(5, "poisson", spacing=1.0, seed=7)
        assert a == b
        assert a == sorted(a)
        assert a[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            arrival_times(3, "bogus")


class TestMutexWorkload:
    def test_starts_delegate(self):
        w = MutexWorkload(n=3, sessions=2, arrivals="staggered",
                          arrival_spacing=1.5)
        assert w.starts() == [0.0, 1.5, 3.0]


class TestFailureMix:
    def test_none(self):
        assert failure_mix("none", delta=1.0) == []

    def test_single_burst(self):
        (window,) = failure_mix("single_burst", delta=2.0)
        assert window.start == 2.0
        assert window.end == 2.0 + 12.0

    def test_targeted(self):
        (window,) = failure_mix("targeted", delta=1.0)
        assert window.pids == frozenset({0})

    def test_scattered_seeded(self):
        a = failure_mix("scattered", delta=1.0, seed=4)
        b = failure_mix("scattered", delta=1.0, seed=4)
        assert [(w.start, w.end) for w in a] == [(w.start, w.end) for w in b]
        assert a  # nonempty over the default horizon

    def test_validation(self):
        with pytest.raises(ValueError):
            failure_mix("bogus", delta=1.0)


class TestTimingFor:
    def test_constant_clean(self):
        model = timing_for(delta=2.0, base="constant", failures="none")
        assert isinstance(model, ConstantTiming)
        assert model.step == pytest.approx(1.6)

    def test_jitter(self):
        model = timing_for(delta=1.0, base="jitter")
        assert isinstance(model, UniformTiming)

    def test_with_failures_wraps(self):
        model = timing_for(delta=1.0, failures="single_burst")
        assert isinstance(model, FailureWindowTiming)

    def test_validation(self):
        with pytest.raises(ValueError):
            timing_for(delta=1.0, base="bogus")
