"""Tests for statistics helpers and table rendering."""

import math

import pytest

from repro.analysis.stats import geometric_mean, percentile, speedup, summarize
from repro.analysis.tables import ExperimentTable, format_cell


class TestPercentile:
    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0

    def test_median_even(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        xs = [5, 1, 3]
        assert percentile(xs, 0) == 1
        assert percentile(xs, 100) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestGeomMeanSpeedup:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) is None
        assert speedup(10.0, float("nan")) is None


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float(self):
        assert format_cell(1.234) == "1.23"
        assert format_cell(12345.6) == "12346"
        assert format_cell(float("nan")) == "n/a"

    def test_str_int(self):
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"


class TestExperimentTable:
    def _table(self):
        t = ExperimentTable("EX", "demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", None)
        return t

    def test_add_row_arity_checked(self):
        t = self._table()
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_access(self):
        t = self._table()
        assert t.column("a") == [1, "x"]
        with pytest.raises(KeyError):
            t.column("zzz")

    def test_render_contains_everything(self):
        t = self._table()
        t.notes.append("a note")
        text = t.render()
        assert "[EX] demo" in text
        assert "2.50" in text
        assert "a note" in text

    def test_markdown(self):
        md = self._table().to_markdown()
        assert md.startswith("**[EX] demo**")
        assert "| a | b |" in md
