"""Tests for the ASCII trace timeline."""

import pytest

from repro.algorithms import mutex_session
from repro.analysis.timeline import lane_for, render_timeline
from repro.core.mutex import default_time_resilient_mutex
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    MemoryFault,
    Register,
    failure_window,
    read,
)
from repro.sim.trace import Trace


def run_lock(n=2, sessions=2, timing=None, crashes=None, faults=None):
    lock = default_time_resilient_mutex(n, delta=1.0)
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.4),
                 crashes=crashes, faults=faults, max_time=50_000.0)
    for pid in range(n):
        eng.spawn(mutex_session(lock, pid, sessions, cs_duration=0.5,
                                ncs_duration=0.3), pid=pid)
    return eng.run()


class TestLane:
    def test_contains_all_phases(self):
        res = run_lock()
        lane = lane_for(res.trace, 0, width=80)
        assert len(lane) == 80
        for glyph in ("=", "#", "."):
            assert glyph in lane

    def test_failure_marker(self):
        timing = FailureWindowTiming(
            ConstantTiming(0.4), [failure_window(0.0, 3.0, stretch=10.0)]
        )
        res = run_lock(timing=timing)
        lanes = [lane_for(res.trace, pid) for pid in (0, 1)]
        assert any("!" in lane for lane in lanes)

    def test_crash_marker(self):
        res = run_lock(crashes=CrashSchedule(at_time={1: 1.5}))
        lane = lane_for(res.trace, 1)
        assert "x" in lane

    def test_width_validation(self):
        res = run_lock()
        with pytest.raises(ValueError):
            lane_for(res.trace, 0, width=2)

    def test_empty_trace(self):
        tr = Trace(delta=1.0)
        assert lane_for(tr, 0, width=10) == " " * 10


class TestRenderTimeline:
    def test_full_rendering(self):
        res = run_lock()
        text = render_timeline(res.trace)
        assert "p0  |" in text and "p1  |" in text
        assert "legend" in text

    def test_fault_row(self):
        x = Register("probe", 0)

        def prog(pid):
            for _ in range(10):
                yield read(x)

        eng = Engine(delta=1.0, timing=ConstantTiming(0.4),
                     faults=[MemoryFault(at=2.0, register=x, value=9)])
        eng.spawn(prog(0))
        res = eng.run()
        text = render_timeline(res.trace)
        assert "flt |" in text
        assert "*" in text

    def test_empty(self):
        assert render_timeline(Trace(delta=1.0)) == "(empty trace)"

    def test_fault_pid_excluded_from_lanes(self):
        x = Register("probe", 0)

        def prog(pid):
            yield read(x)

        eng = Engine(delta=1.0, timing=ConstantTiming(0.4),
                     faults=[MemoryFault(at=0.1, register=x, value=9)])
        eng.spawn(prog(0))
        res = eng.run()
        text = render_timeline(res.trace)
        assert "p-1" not in text
