"""Tests for the measurement helpers."""

import pytest

from repro.analysis.metrics import (
    convergence_point,
    decision_times_in_deltas,
    delay_count,
    handover_times,
    max_decision_time_in_deltas,
    registers_touched_under,
    rounds_used,
    solo_steps_to_decision,
    throughput,
)
from repro.core.consensus import run_consensus
from repro.sim import ConstantTiming, ops
from repro.sim.trace import EventKind, Trace, TraceEvent


def lbl(seq, pid, kind, t, value=None):
    return TraceEvent(seq=seq, pid=pid, kind=EventKind.LABEL, issued=t,
                      completed=t, label=kind, value=value)


class TestConsensusMetrics:
    def test_decision_times_normalized(self):
        r = run_consensus([0, 1], delta=2.0, timing=ConstantTiming(1.0))
        times = decision_times_in_deltas(r.run.trace)
        assert set(times) == {0, 1}
        assert max(times.values()) == max_decision_time_in_deltas(r.run.trace)
        assert all(t > 0 for t in times.values())

    def test_rounds_used_solo(self):
        r = run_consensus([1], delta=1.0, timing=ConstantTiming(0.5))
        assert rounds_used(r.run.trace, 0) == 1
        assert delay_count(r.run.trace) == 0

    def test_rounds_used_conflict(self):
        r = run_consensus([0, 1], delta=1.0, timing=ConstantTiming(0.5))
        assert rounds_used(r.run.trace, 0) == 2

    def test_solo_steps_to_decision(self):
        r = run_consensus([1], delta=1.0, timing=ConstantTiming(0.5))
        assert solo_steps_to_decision(r.run.trace, 0) == 7
        assert solo_steps_to_decision(r.run.trace, 9) is None


class TestMutexMetrics:
    def _trace(self):
        tr = Trace(delta=1.0)
        events = [
            lbl(0, 0, ops.ENTRY_START, 0.0),
            lbl(1, 0, ops.CS_ENTER, 1.0),
            lbl(2, 0, ops.CS_EXIT, 2.0),
            lbl(3, 1, ops.ENTRY_START, 1.5),
            lbl(4, 1, ops.CS_ENTER, 3.0),
            lbl(5, 1, ops.CS_EXIT, 4.0),
        ]
        for e in sorted(events, key=lambda e: e.completed):
            tr.append(e)
        return tr

    def test_throughput(self):
        tr = self._trace()
        assert throughput(tr) == pytest.approx(2 / 4.0)
        assert throughput(tr, since=2.5) == pytest.approx(1 / 1.5)

    def test_handover_times(self):
        tr = self._trace()
        gaps = handover_times(tr)
        assert gaps == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_convergence_point_no_failures(self):
        tr = self._trace()
        cp = convergence_point(tr, psi=5.0)
        assert cp.convergence_time == 0.0


class TestRegisterAudit:
    def test_registers_touched_under_prefix(self):
        r = run_consensus([0, 1], delta=1.0, timing=ConstantTiming(0.5))
        # The default namespace is instance-unique: recover the actual
        # prefix from any touched name.
        some_name = next(iter(r.run.memory.touched_registers))
        prefix = some_name[0] if not isinstance(some_name[0], tuple) else some_name[0][0]
        under = registers_touched_under(r.run, prefix)
        assert under == r.run.memory.touched_registers
        assert registers_touched_under(r.run, "nonexistent") == set()
