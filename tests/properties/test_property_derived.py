"""Property-based tests for the derived wait-free objects.

Hypothesis sweeps participation patterns, crash schedules, jitter seeds
and linearization orders; the objects' safety properties must hold in
every generated execution.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.core.derived import (
    LeaderElection,
    MultivaluedConsensus,
    Renaming,
    SetConsensus,
)
from repro.core.derived import TestAndSet as TasObject
from repro.sim import (
    CrashSchedule,
    Engine,
    RandomTieBreak,
    UniformTiming,
)
from repro.sim.registers import RegisterNamespace

MAX_EXAMPLES = 30


def engine_for(seed, crashes=None):
    return Engine(
        delta=1.0,
        timing=UniformTiming(0.05, 1.0, seed=seed),
        tie_break=RandomTieBreak(seed),
        crashes=crashes,
        max_time=100_000.0,
        max_total_steps=500_000,
    )


crash_strategy = st.dictionaries(
    keys=st.integers(0, 5), values=st.integers(0, 20), max_size=3
)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(n=st.integers(1, 6), seed=st.integers(0, 2**16), crashes=crash_strategy)
def test_election_unique_leader(n, seed, crashes):
    crashes = {pid: step for pid, step in crashes.items() if pid < n}
    assume(len(crashes) < n)  # keep at least one live candidate
    election = LeaderElection(n=n, delta=1.0,
                              namespace=RegisterNamespace(("pel", n, seed)))
    eng = engine_for(seed, CrashSchedule(after_steps=crashes))
    for pid in range(n):
        eng.spawn(election.elect(pid), pid=pid)
    res = eng.run()
    leaders = set(res.returns.values())
    assert len(leaders) <= 1
    if leaders:
        assert leaders.pop() in range(n)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(n=st.integers(1, 6), seed=st.integers(0, 2**16), crashes=crash_strategy)
def test_tas_at_most_one_winner(n, seed, crashes):
    crashes = {pid: step for pid, step in crashes.items() if pid < n}
    assume(len(crashes) < n)
    tas = TasObject(n=n, delta=1.0,
                    namespace=RegisterNamespace(("ptas", n, seed)))
    eng = engine_for(seed, CrashSchedule(after_steps=crashes))
    for pid in range(n):
        eng.spawn(tas.test_and_set(pid), pid=pid)
    res = eng.run()
    wins = [pid for pid, v in res.returns.items() if v == 0]
    assert len(wins) <= 1
    # If nobody crashed, there is exactly one winner among the finishers.
    if not crashes and res.returns:
        assert len(wins) == 1


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(n=st.integers(1, 6), seed=st.integers(0, 2**16), crashes=crash_strategy)
def test_renaming_distinct_tight_names(n, seed, crashes):
    crashes = {pid: step for pid, step in crashes.items() if pid < n}
    assume(len(crashes) < n)
    renaming = Renaming(n=n, delta=1.0,
                        namespace=RegisterNamespace(("prn", n, seed)))
    eng = engine_for(seed, CrashSchedule(after_steps=crashes))
    for pid in range(n):
        eng.spawn(renaming.acquire(pid), pid=pid)
    res = eng.run()
    names = list(res.returns.values())
    assert len(names) == len(set(names))
    assert all(1 <= name <= n for name in names)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    n=st.integers(1, 6),
    k_fraction=st.floats(0.1, 1.0),
    seed=st.integers(0, 2**16),
)
def test_set_consensus_k_agreement(n, k_fraction, seed):
    k = max(1, min(n, int(round(k_fraction * n))))
    sc = SetConsensus(n=n, k=k, delta=1.0,
                      namespace=RegisterNamespace(("psc", n, k, seed)))
    eng = engine_for(seed)
    for pid in range(n):
        eng.spawn(sc.propose(pid, f"value-{pid}"), pid=pid)
    res = eng.run()
    decided = set(res.returns.values())
    assert 1 <= len(decided) <= k
    assert decided <= {f"value-{pid}" for pid in range(n)}


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(n=st.integers(1, 6), seed=st.integers(0, 2**16), data=st.data())
def test_multivalued_decision_is_someones_proposal(n, seed, data):
    values = [
        data.draw(st.integers(0, 100), label=f"value_{i}") for i in range(n)
    ]
    mv = MultivaluedConsensus(n=n, delta=1.0,
                              namespace=RegisterNamespace(("pmv", n, seed)))
    eng = engine_for(seed)
    for pid in range(n):
        eng.spawn(mv.propose(pid, 1000 + values[pid]), pid=pid)
    res = eng.run()
    decisions = set(res.returns.values())
    assert len(decisions) == 1
    assert decisions.pop() in {1000 + v for v in values}
