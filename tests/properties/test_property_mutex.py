"""Property-based tests: mutual exclusion safety under randomized adversity.

Random timing (including unbounded tails), random tie-breaks and random
failure windows — the asynchronous locks and Algorithm 3 must never lose
mutual exclusion (stabilization), while Fischer alone may (and that is
precisely what the paper's composition fixes).
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    BakeryLock,
    BarDavidLock,
    BlackWhiteBakeryLock,
    LamportFastLock,
    TournamentLock,
    mutex_session,
)
from repro.core.mutex import default_time_resilient_mutex
from repro.sim import (
    AsynchronousTiming,
    Engine,
    FailureWindowTiming,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
    failure_window,
)
from repro.spec import check_mutual_exclusion, check_starvation

MAX_EXAMPLES = 40


def run_random(lock, n, seed, timing, sessions=2, max_time=100_000.0):
    eng = Engine(delta=1.0, timing=timing, tie_break=RandomTieBreak(seed),
                 max_time=max_time, max_total_steps=500_000)
    for pid in range(n):
        eng.spawn(
            mutex_session(lock, pid, sessions, cs_duration=0.2, ncs_duration=0.1),
            pid=pid,
        )
    return eng.run()


LOCK_BUILDERS = {
    "lamport_fast": lambda n: LamportFastLock(n),
    "bakery": lambda n: BakeryLock(n),
    "black_white_bakery": lambda n: BlackWhiteBakeryLock(n),
    "tournament": lambda n: TournamentLock(n),
    "bar_david": lambda n: BarDavidLock(LamportFastLock(n), n),
    "alg3": lambda n: default_time_resilient_mutex(n, delta=1.0),
}


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    name=st.sampled_from(sorted(LOCK_BUILDERS)),
    n=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_exclusion_under_unbounded_asynchrony(name, n, seed):
    lock = LOCK_BUILDERS[name](n)
    timing = AsynchronousTiming(base=0.3, tail_prob=0.2, seed=seed)
    res = run_random(lock, n, seed, timing)
    assert check_mutual_exclusion(res.trace) == [], (name, n, seed)
    assert res.status is RunStatus.COMPLETED  # all are deadlock-free


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    name=st.sampled_from(sorted(LOCK_BUILDERS)),
    n=st.integers(2, 4),
    seed=st.integers(0, 2**16),
    windows=st.lists(
        st.tuples(st.floats(0.0, 10.0), st.floats(0.1, 8.0), st.floats(2.0, 30.0)),
        min_size=1,
        max_size=2,
    ),
)
def test_exclusion_under_failure_windows(name, n, seed, windows):
    lock = LOCK_BUILDERS[name](n)
    timing = FailureWindowTiming(
        UniformTiming(0.05, 1.0, seed=seed),
        [failure_window(s, s + d, stretch=f) for s, d, f in windows],
    )
    res = run_random(lock, n, seed, timing)
    assert check_mutual_exclusion(res.trace) == [], (name, n, seed)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(["bakery", "black_white_bakery", "tournament", "bar_david"]),
    seed=st.integers(0, 2**16),
)
def test_starvation_free_locks_bounded_bypass(name, seed):
    n = 3
    lock = LOCK_BUILDERS[name](n)
    res = run_random(lock, n, seed, UniformTiming(0.05, 1.0, seed=seed), sessions=3)
    assert res.status is RunStatus.COMPLETED
    starved, _ = check_starvation(res.trace, bypass_bound=6 * n)
    assert starved == [], (name, seed)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16), n=st.integers(2, 4))
def test_alg3_all_sessions_complete_after_failures_end(seed, n):
    """Deadlock-freedom + convergence: once windows close, progress resumes."""
    lock = default_time_resilient_mutex(n, delta=1.0)
    timing = FailureWindowTiming(
        UniformTiming(0.05, 0.9, seed=seed),
        [failure_window(0.0, 6.0, stretch=25.0)],
    )
    res = run_random(lock, n, seed, timing, sessions=3)
    assert res.status is RunStatus.COMPLETED
    assert len(res.trace.cs_intervals()) == 3 * n


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_trace_well_formedness(seed):
    """Structural invariants of every generated trace."""
    lock = default_time_resilient_mutex(3, delta=1.0)
    res = run_random(lock, 3, seed, UniformTiming(0.05, 1.0, seed=seed))
    last = 0.0
    for event in res.trace:
        assert event.completed >= event.issued
        assert event.completed >= last
        last = event.completed
    for interval in res.trace.cs_intervals():
        assert interval.exit >= interval.enter
