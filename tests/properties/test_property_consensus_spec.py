"""Property-based tests of the consensus checker on synthetic runs.

The checker is the instrument behind E1-E6; these tests generate synthetic
decision patterns and confirm the checker classifies them correctly.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import ConstantTiming, Engine, label, ops, read
from repro.sim.registers import Register
from repro.spec import check_consensus

MAX_EXAMPLES = 60

X = Register("sx", 0)


def decider(value):
    def prog():
        yield read(X)
        yield label(ops.DECIDED, value)
        return value

    return prog()


def silent():
    yield read(X)


def build_run(decisions, silent_pids=()):
    eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
    pid = 0
    for value in decisions:
        eng.spawn(decider(value), pid=pid)
        pid += 1
    for _ in silent_pids:
        eng.spawn(silent(), pid=pid)
        pid += 1
    return eng.run()


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    value=st.integers(0, 1),
    count=st.integers(1, 5),
)
def test_unanimous_decisions_always_ok(value, count):
    res = build_run([value] * count)
    verdict = check_consensus(res, {pid: value for pid in range(count)})
    assert verdict.ok


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(decisions=st.lists(st.integers(0, 1), min_size=2, max_size=5))
def test_agreement_classification(decisions):
    res = build_run(decisions)
    inputs = {pid: v for pid, v in enumerate(decisions)}
    verdict = check_consensus(res, inputs)
    assert verdict.agreed == (len(set(decisions)) == 1)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    inputs_vals=st.lists(st.integers(0, 1), min_size=1, max_size=4),
    decided=st.integers(0, 5),
)
def test_validity_classification(inputs_vals, decided):
    res = build_run([decided] * len(inputs_vals))
    inputs = {pid: v for pid, v in enumerate(inputs_vals)}
    verdict = check_consensus(res, inputs)
    assert verdict.valid == (decided in set(inputs_vals))


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(deciders=st.integers(1, 3), silents=st.integers(1, 3))
def test_termination_classification(deciders, silents):
    res = build_run([1] * deciders, silent_pids=range(silents))
    inputs = {pid: 1 for pid in range(deciders + silents)}
    verdict = check_consensus(res, inputs)
    assert not verdict.terminated
    assert verdict.safe
    relaxed = check_consensus(res, inputs, require_termination=False)
    assert relaxed.violations == []
