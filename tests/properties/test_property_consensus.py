"""Property-based tests: Algorithm 1 safety under randomized adversity.

Hypothesis drives the adversary: random inputs, random step-time jitter,
random tie-breaking, random failure windows and random crash schedules.
Validity and agreement must hold in *every* generated execution — that is
the stabilization half of the paper's resilience definition.
"""

from hypothesis import given, settings, strategies as st

from repro.core.consensus import run_consensus
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    FailureWindowTiming,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
    failure_window,
)

MAX_EXAMPLES = 60


inputs_strategy = st.lists(st.integers(0, 1), min_size=1, max_size=6)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(inputs=inputs_strategy, seed=st.integers(0, 2**16))
def test_safety_under_jitter(inputs, seed):
    r = run_consensus(
        inputs,
        delta=1.0,
        timing=UniformTiming(0.05, 1.0, seed=seed),
        tie_break=RandomTieBreak(seed),
        max_total_steps=200_000,
    )
    assert r.verdict.ok  # jitter stays within Δ: liveness holds too
    assert r.max_decision_time_in_deltas <= 15.0


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    inputs=inputs_strategy,
    seed=st.integers(0, 2**16),
    windows=st.lists(
        st.tuples(
            st.floats(0.0, 20.0),  # start
            st.floats(0.1, 15.0),  # length
            st.floats(2.0, 40.0),  # stretch
        ),
        min_size=0,
        max_size=3,
    ),
)
def test_safety_under_failure_windows(inputs, seed, windows):
    timing = FailureWindowTiming(
        UniformTiming(0.1, 1.0, seed=seed),
        [failure_window(s, s + length, stretch=f) for s, length, f in windows],
    )
    r = run_consensus(
        inputs,
        delta=1.0,
        timing=timing,
        tie_break=RandomTieBreak(seed),
        max_time=5_000.0,
        max_total_steps=200_000,
    )
    assert r.verdict.safe  # windows end: termination expected too, but we
    # only demand safety here (very long windows can outlast max_time)
    if r.run.status is RunStatus.COMPLETED:
        assert r.verdict.ok


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    inputs=st.lists(st.integers(0, 1), min_size=2, max_size=5),
    seed=st.integers(0, 2**16),
    data=st.data(),
)
def test_safety_and_waitfreedom_under_crashes(inputs, seed, data):
    n = len(inputs)
    crash_pids = data.draw(
        st.lists(st.integers(0, n - 1), unique=True, max_size=n - 1)
    )
    crash_steps = {
        pid: data.draw(st.integers(0, 12), label=f"crash_step_{pid}")
        for pid in crash_pids
    }
    r = run_consensus(
        inputs,
        delta=1.0,
        timing=UniformTiming(0.1, 1.0, seed=seed),
        tie_break=RandomTieBreak(seed),
        crashes=CrashSchedule(after_steps=crash_steps),
        max_total_steps=200_000,
    )
    assert r.verdict.ok  # survivors decide (wait-freedom) and agree


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    inputs=inputs_strategy,
    seed=st.integers(0, 2**16),
    estimate=st.floats(0.05, 5.0),
)
def test_safety_at_any_delta_estimate(inputs, seed, estimate):
    """optimistic(Δ): the algorithm's delay constant never affects safety."""
    r = run_consensus(
        inputs,
        delta=1.0,
        timing=UniformTiming(0.1, 1.0, seed=seed),
        algorithm_delta=estimate,
        max_time=5_000.0,
        max_total_steps=200_000,
    )
    assert r.verdict.safe


@settings(max_examples=30, deadline=None)
@given(value=st.integers(0, 1), n=st.integers(1, 6), seed=st.integers(0, 2**16))
def test_unanimous_inputs_decide_that_value(value, n, seed):
    r = run_consensus(
        [value] * n,
        delta=1.0,
        timing=UniformTiming(0.1, 1.0, seed=seed),
        tie_break=RandomTieBreak(seed),
    )
    assert r.verdict.ok
    assert set(r.decisions.values()) == {value}


@settings(max_examples=30, deadline=None)
@given(
    inputs=inputs_strategy,
    seed=st.integers(0, 2**16),
    starts=st.data(),
)
def test_safety_with_staggered_starts(inputs, seed, starts):
    start_times = [
        starts.draw(st.floats(0.0, 30.0), label=f"start_{i}")
        for i in range(len(inputs))
    ]
    r = run_consensus(
        inputs,
        delta=1.0,
        timing=UniformTiming(0.1, 1.0, seed=seed),
        start_times=start_times,
        max_total_steps=200_000,
    )
    assert r.verdict.ok
