"""Property-based tests for the message-passing layer."""

from hypothesis import given, settings, strategies as st

from repro.mp import Network, OmegaElection, eventual_agreement
from repro.sim import (
    Engine,
    FailureWindowTiming,
    RandomTieBreak,
    UniformTiming,
    failure_window,
)

MAX_EXAMPLES = 25


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    messages=st.lists(st.integers(0, 99), min_size=1, max_size=12),
)
def test_channels_fifo_and_lossless(seed, messages):
    """Every message arrives, exactly once, in send order — regardless of
    jitter and linearization order."""
    net = Network(2)

    def sender(pid):
        endpoint = net.endpoint(0)
        for m in messages:
            yield from endpoint.send(1, m)

    def receiver(pid):
        endpoint = net.endpoint(1)
        got = []
        while len(got) < len(messages):
            inbox = yield from endpoint.poll()
            got.extend(m for _, m in inbox)
        return got

    eng = Engine(delta=1.0, timing=UniformTiming(0.05, 1.0, seed=seed),
                 tie_break=RandomTieBreak(seed), max_time=100_000.0)
    eng.spawn(sender(0), pid=0)
    eng.spawn(receiver(1), pid=1)
    res = eng.run()
    assert res.returns[1] == messages


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    n=st.integers(2, 4),
    seed=st.integers(0, 2**16),
)
def test_omega_agrees_without_failures(n, seed):
    omega = OmegaElection(n, heartbeat_period=1.0, initial_timeout=4.0)
    eng = Engine(delta=1.0, timing=UniformTiming(0.05, 0.5, seed=seed),
                 tie_break=RandomTieBreak(seed), max_time=100_000.0)
    for pid in range(n):
        eng.spawn(omega.run(pid, rounds=12), pid=pid)
    res = eng.run()
    leader = eventual_agreement(dict(res.returns))
    assert leader == 0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    window_len=st.floats(2.0, 10.0),
)
def test_omega_reconverges_after_window(seed, window_len):
    n = 3
    omega = OmegaElection(n, heartbeat_period=1.0, initial_timeout=3.0,
                          timeout_growth=2.0)
    timing = FailureWindowTiming(
        UniformTiming(0.05, 0.3, seed=seed),
        [failure_window(4.0, 4.0 + window_len, pids=[0], stretch=80.0)],
    )
    eng = Engine(delta=1.0, timing=timing, max_time=100_000.0)
    rounds = 40 + int(window_len * 4)
    for pid in range(n):
        eng.spawn(omega.run(pid, rounds=rounds), pid=pid)
    res = eng.run()
    leader = eventual_agreement(dict(res.returns), tail_fraction=0.15)
    assert leader == 0  # pid 0 never crashed; adaptation restores it
