"""Unit tests for the asynchronous replay sandbox."""

import pytest

from repro.sim import ops
from repro.sim.registers import Register
from repro.verify.sandbox import Sandbox

X = Register("x", 0)
Y = Register("y", 0)


def incrementer(pid):
    v = yield ops.read(X)
    yield ops.write(X, v + 1)
    return v


def test_initial_state_parks_at_first_shared_op():
    sb = Sandbox({0: incrementer}, max_ops=10)
    assert sb.enabled() == [0]
    assert not sb.done(0)


def test_step_executes_linearization():
    sb = Sandbox({0: incrementer}, max_ops=10)
    sb.step(0)  # read
    sb.step(0)  # write
    assert sb.done(0)
    assert sb.result(0) == 0
    assert sb.memory.peek(X) == 1


def test_lost_update_interleaving():
    """The classic race: both read 0, both write 1."""
    sb = Sandbox({0: incrementer, 1: incrementer}, max_ops=10)
    sb.step(0)  # p0 reads 0
    sb.step(1)  # p1 reads 0
    sb.step(0)
    sb.step(1)
    assert sb.memory.peek(X) == 1  # the lost update, observable


def test_sequential_interleaving():
    sb = Sandbox({0: incrementer, 1: incrementer}, max_ops=10)
    sb.step(0)
    sb.step(0)
    sb.step(1)
    sb.step(1)
    assert sb.memory.peek(X) == 2


def test_delay_is_noop():
    def prog(pid):
        yield ops.delay(100.0)
        yield ops.write(X, 1)

    sb = Sandbox({0: prog}, max_ops=10)
    sb.step(0)  # goes straight to the write
    assert sb.done(0)


def test_positive_local_work_is_pause_point():
    def prog(pid):
        yield ops.label(ops.CS_ENTER)
        yield ops.local_work(1.0)
        yield ops.label(ops.CS_EXIT)
        yield ops.write(X, 1)

    sb = Sandbox({0: prog}, max_ops=10)
    assert sb.in_cs == {0}  # parked inside the CS
    sb.step(0)  # finish the pause
    assert sb.in_cs == set()
    sb.step(0)
    assert sb.done(0)


def test_zero_local_work_skipped():
    def prog(pid):
        yield ops.local_work(0.0)
        yield ops.write(X, 1)

    sb = Sandbox({0: prog}, max_ops=10)
    sb.step(0)
    assert sb.done(0)


def test_decided_labels_tracked():
    def prog(pid):
        yield ops.write(X, 1)
        yield ops.label(ops.DECIDED, 42)

    sb = Sandbox({0: prog}, max_ops=10)
    sb.step(0)
    assert sb.decisions == {0: 42}


def test_op_bound_suspends():
    def spinner(pid):
        while True:
            yield ops.read(X)

    sb = Sandbox({0: spinner}, max_ops=3)
    for _ in range(3):
        sb.step(0)
    assert sb.enabled() == []
    assert sb.suspended() == [0]
    with pytest.raises(ValueError):
        sb.step(0)


def test_fingerprint_equal_for_equivalent_states():
    sb1 = Sandbox({0: incrementer, 1: incrementer}, max_ops=10)
    sb2 = Sandbox({0: incrementer, 1: incrementer}, max_ops=10)
    sb1.step(0)
    sb2.step(0)
    assert sb1.fingerprint() == sb2.fingerprint()


def test_fingerprint_differs_after_different_histories():
    sb1 = Sandbox({0: incrementer, 1: incrementer}, max_ops=10)
    sb2 = Sandbox({0: incrementer, 1: incrementer}, max_ops=10)
    sb1.step(0)
    sb2.step(1)
    assert sb1.fingerprint() != sb2.fingerprint()


def test_fingerprint_distinguishes_read_values():
    sb1 = Sandbox({0: incrementer, 1: incrementer}, max_ops=10)
    sb2 = Sandbox({0: incrementer, 1: incrementer}, max_ops=10)
    # sb1: p0 reads 0. sb2: p1 increments fully first, then p0 reads 1.
    sb1.step(0)
    sb2.step(1)
    sb2.step(1)
    sb2.step(0)
    assert sb1.fingerprint() != sb2.fingerprint()


def test_all_quiescent():
    sb = Sandbox({0: incrementer}, max_ops=10)
    assert not sb.all_quiescent()
    sb.step(0)
    sb.step(0)
    assert sb.all_quiescent()


def test_non_op_yield_rejected():
    def bad(pid):
        yield 7

    with pytest.raises(TypeError):
        Sandbox({0: bad}, max_ops=10)


def test_double_cs_enter_rejected():
    def bad(pid):
        yield ops.label(ops.CS_ENTER)
        yield ops.label(ops.CS_ENTER)
        yield ops.write(X, 1)

    with pytest.raises(RuntimeError, match="twice"):
        Sandbox({0: bad}, max_ops=10)


class TestRestart:
    """Crash-recovery in the sandbox: fresh program, persistent memory."""

    def test_restart_rebuilds_program_and_keeps_memory(self):
        sb = Sandbox({0: incrementer}, max_ops=10)
        sb.step(0)  # read 0
        sb.step(0)  # write 1
        assert sb.done(0)
        sb.restart(0, incrementer)
        assert not sb.done(0)
        sb.step(0)  # fresh program reads the persistent 1
        sb.step(0)
        assert sb.result(0) == 1 and sb.memory.peek(X) == 2

    def test_restart_resets_per_incarnation_op_budget(self):
        sb = Sandbox({0: incrementer}, max_ops=10)
        sb.step(0)
        assert sb.op_count(0) == 1
        sb.restart(0, incrementer)
        assert sb.op_count(0) == 0

    def test_restart_clears_cs_occupancy(self):
        def looper(pid):
            yield ops.label(ops.CS_ENTER)
            yield ops.local_work(1.0)
            yield ops.label(ops.CS_EXIT)
            yield ops.write(X, 1)

        sb = Sandbox({0: looper}, max_ops=10)
        assert sb.in_cs == {0}
        sb.restart(0, looper)
        assert sb.in_cs == {0}  # the fresh incarnation re-entered
        sb.step(0)
        assert sb.in_cs == set()

    def test_restart_is_visible_to_the_fingerprint(self):
        sb1 = Sandbox({0: incrementer}, max_ops=10)
        sb2 = Sandbox({0: incrementer}, max_ops=10)
        sb2.restart(0, incrementer)
        assert sb1.fingerprint() != sb2.fingerprint()

    def test_restart_unknown_pid_rejected(self):
        sb = Sandbox({0: incrementer}, max_ops=10)
        with pytest.raises(ValueError, match="unknown pid"):
            sb.restart(7, incrementer)
