"""Unit tests for :class:`repro.verify.properties.InvariantProperty`."""

from repro.sim import ops
from repro.sim.registers import Register
from repro.verify.properties import InvariantProperty
from repro.verify.sandbox import Sandbox

X = Register("x", 0)


def incrementer(pid):
    v = yield ops.read(X)
    yield ops.write(X, v + 1)
    return v


def make_sandbox():
    return Sandbox({0: incrementer, 1: incrementer}, max_ops=10)


def test_holds_returns_none():
    prop = InvariantProperty(lambda sb: sb.memory.peek(X) >= 0)
    sb = make_sandbox()
    assert prop.check(sb) is None
    sb.step(0)
    sb.step(0)
    assert prop.check(sb) is None


def test_violation_returns_message():
    prop = InvariantProperty(
        lambda sb: sb.memory.peek(X) == 0,
        name="x-stays-zero",
        message="x left zero",
    )
    sb = make_sandbox()
    assert prop.check(sb) is None
    sb.step(0)  # read
    sb.step(0)  # write: x becomes 1
    assert prop.check(sb) == "x left zero"


def test_defaults():
    prop = InvariantProperty(lambda sb: False)
    assert prop.name == "invariant"
    assert prop.check(make_sandbox()) == "invariant violated"


def test_custom_name_is_kept():
    prop = InvariantProperty(lambda sb: True, name="bounded")
    assert prop.name == "bounded"


def test_predicate_sees_live_state():
    """The predicate observes the same sandbox the explorer mutates."""
    seen = []

    def spy(sb):
        seen.append(sb.memory.peek(X))
        return True

    prop = InvariantProperty(spy)
    sb = make_sandbox()
    prop.check(sb)
    sb.step(0)
    sb.step(0)
    prop.check(sb)
    assert seen == [0, 1]
