"""Tests for the schedule fuzzer."""

import pytest

from repro.algorithms import FischerLock, mutex_session
from repro.core.consensus import TimeResilientConsensus, labeled_decision
from repro.core.mutex import default_time_resilient_mutex
from repro.sim import ops
from repro.sim.registers import Register
from repro.verify import (
    AgreementProperty,
    InvariantProperty,
    MutualExclusionProperty,
    ValidityProperty,
    fuzz,
    replay_schedule,
)

X = Register("fz", 0)


class TestMechanics:
    def test_counts_and_completion(self):
        def prog(pid):
            yield ops.write(X, pid)

        res = fuzz({0: prog, 1: prog}, [], schedules=10, max_ops=5, seed=1)
        assert res.ok
        assert res.schedules_run == 10
        assert res.completed_runs == 10
        assert res.steps_taken == 20

    def test_deterministic_per_seed(self):
        def prog(pid):
            v = yield ops.read(X)
            yield ops.write(X, v + 1)

        a = fuzz({0: prog, 1: prog}, [], schedules=5, seed=3)
        b = fuzz({0: prog, 1: prog}, [], schedules=5, seed=3)
        assert a.steps_taken == b.steps_taken

    def test_violation_schedule_replayable(self):
        def prog(pid):
            v = yield ops.read(X)
            yield ops.write(X, v + 1)

        prop = InvariantProperty(lambda sb: sb.memory.peek(X) < 2,
                                 name="x<2", message="x hit 2")
        res = fuzz({0: prog, 1: prog}, [prop], schedules=100, seed=0)
        assert not res.ok
        sb = replay_schedule({0: prog, 1: prog}, res.violations[0].schedule,
                             max_ops=200)
        assert sb.memory.peek(X) == 2

    def test_bias_weights_respected_roughly(self):
        def spinner(pid):
            for _ in range(50):
                yield ops.read(X)

        res = fuzz({0: spinner, 1: spinner}, [], schedules=1, max_ops=50,
                   seed=2, bias={0: 10.0, 1: 1.0})
        # both ran to their op bound eventually; just a smoke check that
        # biased scheduling doesn't break anything
        assert res.steps_taken == 100

    def test_negative_schedules_rejected(self):
        with pytest.raises(ValueError):
            fuzz({}, [], schedules=-1)


class TestOnAlgorithms:
    def test_fischer_violation_found_by_fuzzing(self):
        lock = FischerLock(delta=1.0)
        factories = {
            pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
            for pid in range(3)  # three processes: beyond easy DFS
        }
        res = fuzz(factories, [MutualExclusionProperty()], schedules=500,
                   max_ops=40, seed=4)
        assert not res.ok

    def test_alg3_survives_heavy_fuzzing_n4(self):
        """Four processes — out of exhaustive reach, easy for the fuzzer."""
        lock = default_time_resilient_mutex(4, delta=1.0)
        factories = {
            pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
            for pid in range(4)
        }
        res = fuzz(factories, [MutualExclusionProperty()], schedules=150,
                   max_ops=120, seed=5)
        assert res.ok, res.violations[:1]

    def test_consensus_safety_fuzzed_n4(self):
        consensus = TimeResilientConsensus(delta=1.0, max_rounds=3)
        inputs = {pid: pid % 2 for pid in range(4)}
        factories = {
            pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
            for pid in inputs
        }
        res = fuzz(
            factories,
            [AgreementProperty(), ValidityProperty(inputs)],
            schedules=150,
            max_ops=80,
            seed=6,
        )
        assert res.ok, res.violations[:1]

    def test_biased_fuzzing_emulates_slow_process(self):
        """A 20x speed skew (the adversarial mix) still never breaks Alg 1."""
        consensus = TimeResilientConsensus(delta=1.0, max_rounds=3)
        inputs = {0: 0, 1: 1}
        factories = {
            pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
            for pid in inputs
        }
        res = fuzz(
            factories,
            [AgreementProperty(), ValidityProperty(inputs)],
            schedules=200,
            max_ops=60,
            seed=7,
            bias={0: 20.0, 1: 1.0},
        )
        assert res.ok


class TestFailureCollection:
    """Collect-all mode: every violation, each with its replay recipe."""

    def _prog(self, pid):
        v = yield ops.read(X)
        yield ops.write(X, v + 1)

    def test_collect_all_keeps_fuzzing_past_first_hit(self):
        prop = InvariantProperty(lambda sb: sb.memory.peek(X) < 2,
                                 name="x<2", message="x hit 2")
        first = fuzz({0: self._prog, 1: self._prog}, [prop],
                     schedules=50, seed=0)
        both = fuzz({0: self._prog, 1: self._prog}, [prop],
                    schedules=50, seed=0, stop_at_first_violation=False)
        assert len(first.failures) == 1
        assert first.schedules_run < 50
        assert both.schedules_run == 50
        assert len(both.failures) > 1

    def test_each_property_fires_at_most_once_per_run(self):
        # The broken state persists for the rest of the run; the report
        # must not flood with one violation per subsequent step.
        prop = InvariantProperty(lambda sb: sb.memory.peek(X) < 1,
                                 name="x<1", message="x hit 1")
        res = fuzz({0: self._prog, 1: self._prog}, [prop],
                   schedules=10, seed=0, stop_at_first_violation=False)
        assert len(res.failures) == 10  # every run trips it exactly once

    def test_failure_carries_seed_key_and_replayable_schedule(self):
        prop = InvariantProperty(lambda sb: sb.memory.peek(X) < 2,
                                 name="x<2", message="x hit 2")
        res = fuzz({0: self._prog, 1: self._prog}, [prop],
                   schedules=100, seed=7, stop_at_first_violation=False)
        assert not res.ok
        failure = res.failures[0]
        assert failure.seed_key == f"7:{failure.run_index}"
        hint = failure.replay_hint()
        assert failure.seed_key in hint and "schedule=[" in hint
        sb = replay_schedule({0: self._prog, 1: self._prog},
                             failure.violation.schedule, max_ops=200)
        assert sb.memory.peek(X) == 2

    def test_violations_property_mirrors_failures(self):
        prop = InvariantProperty(lambda sb: sb.memory.peek(X) < 2,
                                 name="x<2", message="x hit 2")
        res = fuzz({0: self._prog, 1: self._prog}, [prop],
                   schedules=100, seed=0, stop_at_first_violation=False)
        assert [f.violation for f in res.failures] == res.violations
