"""Tests for the self-stabilization property checker."""

import pytest

from repro.sim import ops
from repro.sim.registers import Register
from repro.verify.stabilization import (
    SelfStabilizationProperty,
    StabilizationReport,
    dg_ring_property,
)


class TestValidation:
    def _noop_property(self, **kwargs):
        X = Register("x", 1)

        def build():
            def prog(pid):
                while True:
                    yield ops.read(X)

            return {0: prog}

        return SelfStabilizationProperty(
            build=build,
            corrupt=lambda sb, rng: None,
            legal=lambda sb: True,
            **kwargs,
        )

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="speculative_bound"):
            self._noop_property(speculative_bound=0)

    def test_rejects_nonpositive_tail(self):
        with pytest.raises(ValueError, match="tail"):
            self._noop_property(speculative_bound=10, tail=0)


class TestReport:
    def test_ok_iff_no_violations(self):
        report = StabilizationReport(trials=3, converged=3)
        assert report.ok and "ok" in repr(report)
        report.violations.append("boom")
        assert not report.ok and "1 violation(s)" in repr(report)


class TestDGRing:
    def test_ring_n3_stabilizes(self):
        report = dg_ring_property(3).check("stab-n3", trials=8)
        assert report.ok, report.violations
        assert report.converged == report.trials == 8
        assert report.speculative_ok == report.speculative_trials == 8
        assert report.max_steps_to_legal > 0  # some corruption bit

    def test_ring_n4_wide_k_stabilizes(self):
        report = dg_ring_property(4, k=6).check("stab-n4", trials=5)
        assert report.ok, report.violations

    def test_already_legal_start_settles_immediately(self):
        prop = dg_ring_property(3)
        prop.corrupt = lambda sandbox, rng: None  # leave the legal zeros
        report = prop.check_convergence("legal", trials=1)
        assert report.ok and report.max_steps_to_legal == 0

    def test_convergence_and_speculation_reports_merge(self):
        report = dg_ring_property(3).check("merge", trials=2)
        assert report.trials == 2 and report.speculative_trials == 2


class TestNonStabilizing:
    def _stuck_property(self):
        # A system that can never repair itself: legality wants x == 1,
        # the program keeps writing 0, corruption forces x = 0.
        X = Register("x", 1)

        def build():
            def prog(pid):
                while True:
                    yield ops.write(X, 0)

            return {0: prog}

        return SelfStabilizationProperty(
            build=build,
            corrupt=lambda sb, rng: sb.memory.poke(X, 0),
            legal=lambda sb: sb.memory.peek(X) == 1,
            speculative_bound=10,
            max_ops=50,
            tail=5,
        )

    def test_never_legal_is_a_violation(self):
        report = self._stuck_property().check("stuck", trials=2)
        assert not report.ok
        assert report.converged == 0 and report.speculative_ok == 0
        assert all("past the" in v for v in report.violations)

    def test_illegal_inside_tail_is_a_violation(self):
        # Legal start, but the program breaks legality on its very first
        # step — inside the budget it would settle... except it keeps
        # re-breaking, so the last illegal state lands in the tail.
        prop = self._stuck_property()
        prop.corrupt = lambda sb, rng: None
        report = prop.check_convergence("tail", trials=1)
        assert not report.ok
