"""Tests for the model checker: exhaustive safety checks of the paper's
algorithms on small configurations (experiments E6 and E13 in miniature)."""

import pytest

from repro.algorithms import FischerLock, LamportFastLock, PetersonTwoProcess, mutex_session
from repro.core.consensus import TimeResilientConsensus, labeled_decision
from repro.core.mutex import default_time_resilient_mutex
from repro.sim import ops
from repro.sim.registers import Register
from repro.verify import (
    AgreementProperty,
    InvariantProperty,
    MutualExclusionProperty,
    ValidityProperty,
    explore,
    replay_schedule,
)

X = Register("mx", 0)


def lock_factories(lock, n, cs_duration=1.0):
    return {
        pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=cs_duration))
        for pid in range(n)
    }


class TestExplorerMechanics:
    def test_counts_states(self):
        def prog(pid):
            yield ops.write(X, pid)

        res = explore({0: prog, 1: prog}, [], max_ops=5)
        assert res.ok and res.complete
        # states: initial, after each single write, after both orders
        # (memoized: final states with same memory+histories merge).
        assert res.states >= 3
        assert res.terminal_states >= 1

    def test_max_states_marks_incomplete(self):
        def spinner(pid):
            while True:
                v = yield ops.read(X)
                yield ops.write(X, (v + 1) % 100)

        res = explore({0: spinner, 1: spinner}, [], max_ops=30, max_states=50)
        assert not res.complete

    def test_invariant_violation_found_with_schedule(self):
        def prog(pid):
            v = yield ops.read(X)
            yield ops.write(X, v + 1)

        # "x never reaches 2" is violated only by the sequential order.
        prop = InvariantProperty(
            lambda sb: sb.memory.peek(X) < 2, name="x<2", message="x reached 2"
        )
        res = explore({0: prog, 1: prog}, [prop], max_ops=5,
                      stop_at_first_violation=True)
        assert not res.ok
        schedule = res.violations[0].schedule
        sb = replay_schedule({0: prog, 1: prog}, schedule, max_ops=5)
        assert sb.memory.peek(X) == 2

    def test_on_terminal_hook(self):
        def prog(pid):
            yield ops.write(X, 1)

        res = explore(
            {0: prog},
            [],
            max_ops=5,
            on_terminal=lambda sb: None if sb.done(0) else "p0 stuck",
        )
        assert res.ok

    def test_stop_at_first_violation_false_collects_all(self):
        def prog(pid):
            yield ops.write(X, pid + 1)

        prop = InvariantProperty(
            lambda sb: sb.memory.peek(X) == 0, name="never", message="x written"
        )
        res = explore({0: prog, 1: prog}, [prop], max_ops=5,
                      stop_at_first_violation=False)
        assert len(res.violations) >= 2


class TestPaperSafetyTheorems:
    def test_fischer_violation_found(self):
        """E13: the checker finds Fischer's loss of exclusion (Thm ref §3.1)."""
        lock = FischerLock(delta=1.0)
        res = explore(lock_factories(lock, 2), [MutualExclusionProperty()],
                      max_ops=30)
        assert not res.ok
        assert res.violations[0].property_name == "mutual_exclusion"
        # The witness is short — the classic interleaving.
        assert len(res.violations[0].schedule) <= 12

    def test_lamport_fast_exclusion_exhaustive(self):
        lock = LamportFastLock(2)
        res = explore(lock_factories(lock, 2), [MutualExclusionProperty()],
                      max_ops=40)
        assert res.ok and res.complete

    def test_peterson_exclusion_exhaustive(self):
        lock = PetersonTwoProcess()
        res = explore(lock_factories(lock, 2), [MutualExclusionProperty()],
                      max_ops=30)
        assert res.ok and res.complete

    def test_algorithm1_agreement_validity_exhaustive_n2(self):
        """E6: Theorems 2.2/2.3 machine-checked for n=2, conflicting inputs."""
        consensus = TimeResilientConsensus(delta=1.0, max_rounds=2)
        inputs = {0: 0, 1: 1}
        factories = {
            pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
            for pid in inputs
        }
        res = explore(
            factories,
            [AgreementProperty(), ValidityProperty(inputs)],
            max_ops=30,
        )
        assert res.ok and res.complete
        assert res.states > 100  # a real exploration, not a vacuous one

    def test_algorithm1_unanimous_decides_input(self):
        consensus = TimeResilientConsensus(delta=1.0, max_rounds=2)
        inputs = {0: 1, 1: 1}
        factories = {
            pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
            for pid in inputs
        }

        def all_decided_one(sandbox):
            for pid in (0, 1):
                if sandbox.done(pid) and sandbox.decisions.get(pid) != 1:
                    return f"pid {pid} decided {sandbox.decisions.get(pid)}"
            return None

        res = explore(
            factories,
            [AgreementProperty(), ValidityProperty(inputs)],
            max_ops=30,
            on_terminal=all_decided_one,
        )
        assert res.ok and res.complete

    @pytest.mark.slow
    def test_algorithm3_exclusion_exhaustive_n2(self):
        """Algorithm 3's stabilization, exhaustively (slower: ~2 min)."""
        lock = default_time_resilient_mutex(2, delta=1.0)
        res = explore(lock_factories(lock, 2), [MutualExclusionProperty()],
                      max_ops=40)
        assert res.ok and res.complete

    def test_algorithm3_exclusion_bounded_n2(self):
        """A cheaper bounded variant of the exhaustive check above."""
        lock = default_time_resilient_mutex(2, delta=1.0)
        res = explore(lock_factories(lock, 2), [MutualExclusionProperty()],
                      max_ops=24)
        assert res.ok and res.complete

    def test_at_consensus_agreement_violation_found(self):
        """The non-resilient building block loses agreement under asynchrony."""
        from repro.algorithms import AtConsensus

        algo = AtConsensus(delta=1.0)
        inputs = {0: 0, 1: 1}
        factories = {pid: (lambda p: algo.propose(p, inputs[p])) for pid in inputs}
        res = explore(factories, [AgreementProperty()], max_ops=20)
        assert not res.ok
        assert res.violations[0].property_name == "agreement"
