"""Additional exhaustive safety checks across the algorithm zoo."""

import pytest

from repro.algorithms import BakeryLock, BlackWhiteBakeryLock, FilterLock, mutex_session
from repro.algorithms import TestAndSetLock as TasLock  # avoid pytest collection
from repro.core.bounded import BoundedConsensus
from repro.core.consensus import labeled_decision
from repro.sim.registers import RegisterNamespace
from repro.verify import (
    AgreementProperty,
    MutualExclusionProperty,
    ValidityProperty,
    explore,
)


def lock_factories(lock, n):
    return {
        pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
        for pid in range(n)
    }


@pytest.mark.parametrize(
    "make_lock",
    [
        lambda: BakeryLock(2, namespace=RegisterNamespace("xb")),
        lambda: BlackWhiteBakeryLock(2, namespace=RegisterNamespace("xbw")),
        lambda: FilterLock(2, namespace=RegisterNamespace("xf")),
        lambda: TasLock(namespace=RegisterNamespace("xt")),
    ],
    ids=["bakery", "black_white_bakery", "filter", "tas_lock"],
)
def test_exhaustive_exclusion_n2(make_lock):
    lock = make_lock()
    res = explore(lock_factories(lock, 2), [MutualExclusionProperty()],
                  max_ops=28)
    assert res.ok and res.complete, res


def test_bounded_consensus_exhaustive_safety():
    """The finite-register variant keeps Algorithm 1's safety.

    The asynchronous exploration ignores timing entirely, so the round
    budget must exceed what max_ops can start (the checker deliberately
    violates any timing assumption); with a budget of 10 rounds and a
    28-op bound no schedule can trip it, and safety is checked on every
    interleaving prefix.
    """
    c = BoundedConsensus(delta=1.0, failure_bound=25.0, min_step=0.5,
                         namespace=RegisterNamespace("xbc"))
    assert c.max_rounds >= 10
    inputs = {0: 0, 1: 1}
    factories = {
        pid: (lambda p: labeled_decision(c.propose(p, inputs[p])))
        for pid in inputs
    }
    res = explore(
        factories,
        [AgreementProperty(), ValidityProperty(inputs)],
        max_ops=26,
    )
    assert res.ok


def test_violation_schedules_are_minimal_for_fischer():
    """Collect all shortest violating schedules — documentation of the bug."""
    from repro.algorithms import FischerLock

    lock = FischerLock(delta=1.0, namespace=RegisterNamespace("xfi"))
    res = explore(lock_factories(lock, 2), [MutualExclusionProperty()],
                  max_ops=14, stop_at_first_violation=False,
                  max_states=100_000)
    assert res.violations
    shortest = min(len(v.schedule) for v in res.violations)
    assert shortest == 6  # read0, read1, write, check, write, check
