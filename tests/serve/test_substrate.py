"""The Substrate protocol and the live loopback implementation."""

import asyncio

import pytest

from repro.net.transport import Transport
from repro.serve import AsyncioSubstrate, FaultProxySubstrate, Substrate
from repro.net.faults import NetFaultPlan


def test_transport_satisfies_substrate_protocol():
    # The tentpole claim: the sim fabric already speaks the protocol —
    # no adapter, no wrapper, structural conformance.
    assert isinstance(Transport(4, bound=1.0), Substrate)


def test_asyncio_substrate_satisfies_protocol():
    assert isinstance(AsyncioSubstrate(3), Substrate)


def test_fault_proxy_satisfies_protocol():
    inner = Transport(3, bound=1.0)
    assert isinstance(FaultProxySubstrate(inner, NetFaultPlan.none()), Substrate)


def test_substrate_validates_construction():
    with pytest.raises(ValueError):
        AsyncioSubstrate(0)
    with pytest.raises(ValueError):
        AsyncioSubstrate(3, bound=0.0)


def test_peers_excludes_self():
    substrate = AsyncioSubstrate(4)
    assert substrate.peers(2) == (0, 1, 3)


def test_send_before_start_raises():
    substrate = AsyncioSubstrate(2)
    with pytest.raises(RuntimeError):
        substrate.send(0, 1, "x", 0.0)


def test_live_round_trip_and_stats():
    async def body():
        substrate = AsyncioSubstrate(3, bound=0.05)
        await substrate.start()
        try:
            substrate.send(0, 1, ("hello", 42), substrate.clock.now)
            substrate.send(2, 1, ("also", 7), substrate.clock.now)
            assert await substrate.wait_for_message(1, timeout=2.0)
            # Delivery order between distinct senders is not promised;
            # payload fidelity and (src, payload) pairing are.
            got = {}
            deadline = substrate.clock.now + 2.0
            while len(got) < 2 and substrate.clock.now < deadline:
                for src, payload in substrate.collect(1, substrate.clock.now):
                    got[src] = payload
                await asyncio.sleep(0.005)
            assert got == {0: ("hello", 42), 2: ("also", 7)}
            assert substrate.stats.messages_sent == 2
            assert substrate.stats.messages_delivered == 2
            assert substrate.collect(1, substrate.clock.now) == []
        finally:
            await substrate.close()
            await substrate.close()  # idempotent

    asyncio.run(body())


def test_self_send_rejected():
    async def body():
        substrate = AsyncioSubstrate(2)
        await substrate.start()
        try:
            with pytest.raises(ValueError):
                substrate.send(0, 0, "x", 0.0)
            with pytest.raises(ValueError):
                substrate.send(0, 9, "x", 0.0)
        finally:
            await substrate.close()

    asyncio.run(body())


def test_wait_for_message_times_out():
    async def body():
        substrate = AsyncioSubstrate(2)
        await substrate.start()
        try:
            assert not await substrate.wait_for_message(0, timeout=0.05)
        finally:
            await substrate.close()

    asyncio.run(body())


def test_clock_is_run_relative():
    async def body():
        substrate = AsyncioSubstrate(2)
        assert substrate.clock.now == 0.0  # before start: the origin
        await substrate.start()
        try:
            first = substrate.clock.now
            await asyncio.sleep(0.01)
            assert substrate.clock.now > first >= 0.0
        finally:
            await substrate.close()

    asyncio.run(body())
