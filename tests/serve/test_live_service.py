"""End-to-end over real sockets: the lease service doing its job."""

import asyncio
import math

import pytest

from repro.net.faults import DelaySpike, MessageLoss, NetFaultPlan
from repro.serve import LeaseService, LoadGenerator, percentile


def _service(**kwargs):
    defaults = dict(shards=2, keepers_per_shard=1, replicas=3,
                    bound=0.05, seed=0, block=64)
    defaults.update(kwargs)
    return LeaseService(**defaults)


def test_acquire_release_and_contention():
    async def body():
        service = _service()
        await service.start()
        try:
            lease = await service.acquire("jobs", ttl=5.0, holder="a")
            assert lease is not None

            # A second client contends, times out while the lease holds...
            blocked = await service.acquire("jobs", ttl=5.0, timeout=0.2,
                                            holder="b")
            assert blocked is None

            # ...then wins as soon as the holder releases.
            waiter = asyncio.ensure_future(
                service.acquire("jobs", ttl=5.0, timeout=5.0, holder="b"))
            await asyncio.sleep(0.05)
            assert service.release("jobs", lease.token)
            handoff = await waiter
            assert handoff is not None
            assert handoff.token > lease.token  # fencing across the handoff
            assert service.verify() == []
        finally:
            await service.close()

    asyncio.run(body())


def test_expiry_under_stalled_client_live():
    async def body():
        service = _service(sweep_interval=0.05)
        await service.start()
        try:
            stalled = await service.acquire("db", ttl=0.3, holder="stalled")
            assert stalled is not None
            # The stalled client never releases; the next acquire must
            # wait out the TTL, not the full timeout.
            fresh = await service.acquire("db", ttl=5.0, timeout=5.0,
                                          holder="next")
            assert fresh is not None and fresh.token > stalled.token
            # The zombie's late release is fenced.
            assert not service.release("db", stalled.token)
            assert service.summary()["counters"]["fenced"] >= 1
            assert service.verify() == []
        finally:
            await service.close()

    asyncio.run(body())


def test_keys_route_to_distinct_shards_independently():
    async def body():
        service = _service()
        await service.start()
        try:
            leases = []
            for i in range(8):
                lease = await service.acquire(f"user:{i}", ttl=5.0)
                assert lease is not None
                leases.append((f"user:{i}", lease))
            # Tokens are per-shard; holding one key never blocks another.
            for key, lease in leases:
                assert service.release(key, lease.token)
            counters = service.summary()["counters"]
            assert counters["granted"] == 8
            assert counters["released"] == 8
            assert service.verify() == []
        finally:
            await service.close()

    asyncio.run(body())


def test_small_load_run_is_clean():
    async def body():
        service = _service(shards=2, block=256)
        await service.start()
        try:
            load = LoadGenerator(service, clients=200, duration=1.0,
                                 seed=0, keyspace=64, timeout=5.0)
            report = await load.run()
            assert report["granted"] + report["timeouts"] == 200
            assert report["errors"] == 0
            assert report["timeouts"] == 0
            assert service.verify() == []
        finally:
            await service.close()

    asyncio.run(body())


def test_service_survives_chaos_plan():
    async def body():
        plan = NetFaultPlan(
            losses=(MessageLoss(rate=0.05),),
            spikes=(DelaySpike(start=0.0, end=math.inf, extra=0.01),),
        )
        service = _service(fault_plan=plan, fault_seed=1, bound=0.1)
        await service.start()
        try:
            lease = await service.acquire("chaotic", ttl=5.0, timeout=20.0)
            assert lease is not None
            assert service.release("chaotic", lease.token)
            assert service.verify() == []
            assert service.summary()["net"]["messages_dropped"] >= 0
        finally:
            await service.close()

    asyncio.run(body())


def test_service_validates_construction():
    with pytest.raises(ValueError):
        _service(shards=0)
    with pytest.raises(ValueError):
        _service(replicas=0)  # rejected by QuorumSystem construction


def test_percentile_nearest_rank():
    values = sorted(float(v) for v in range(1, 101))
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile(values, 100) == 100.0
    assert percentile([], 50) is None
    with pytest.raises(ValueError):
        percentile(values, 0)
