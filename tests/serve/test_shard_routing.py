"""Shard routing: same key -> same shard, across processes and restarts."""

import subprocess
import sys

import pytest

from repro.serve import shard_for


def test_routing_is_pinned():
    # Hard-coded expectations: crc32 is stable across Python versions,
    # platforms, and PYTHONHASHSEED, so these can never drift between a
    # service restart and a client that cached its routing.
    assert shard_for("user:0", 4) == 0
    assert shard_for("user:1", 4) == 2
    assert shard_for("user:2", 4) == 0
    assert shard_for("lock/alpha", 16) == 14
    assert shard_for("lock/beta", 16) == 2
    assert shard_for(42, 16) == 8


def test_routing_survives_a_fresh_interpreter():
    # A "restart" in miniature: a brand-new process (fresh hash seed)
    # must route the same keys to the same shards.
    code = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.serve import shard_for\n"
        "print(shard_for('user:0', 4), shard_for('lock/alpha', 16))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True, timeout=60,
    )
    assert out.stdout.split() == ["0", "14"]


def test_single_shard_routes_everything_to_zero():
    assert all(shard_for(f"k{i}", 1) == 0 for i in range(64))


def test_distribution_is_sane():
    shards = 8
    counts = [0] * shards
    for i in range(4096):
        counts[shard_for(f"key{i}", shards)] += 1
    # crc32 over distinct keys should be roughly uniform; allow wide slack.
    assert min(counts) > 4096 // shards // 2
    assert max(counts) < 4096 // shards * 2


def test_shard_count_validated():
    with pytest.raises(ValueError):
        shard_for("k", 0)
