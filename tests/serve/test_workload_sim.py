"""The sim-substrate workload: deterministic, exclusion-checked, counted."""

from repro.serve import lease_churn_sim


def test_lease_churn_sim_counters():
    result = lease_churn_sim(seed=0)
    # 2 shards x 2 keepers x 2 cycles of refills, 4 grants per refill.
    assert result == {
        "granted": 32,
        "released": 32,
        "refills": 8,
        "stale_refills": 0,
        "tokens_reserved": 128,
        "keeper_cs": 8,
        "lease_violations": 0,
    }


def test_lease_churn_sim_is_deterministic():
    assert lease_churn_sim(seed=7) == lease_churn_sim(seed=7)


def test_lease_churn_sim_scales_with_shape():
    result = lease_churn_sim(shards=1, keepers_per_shard=3, cycles=1,
                             grants_per_cycle=2, seed=3)
    assert result["refills"] == 3
    assert result["granted"] == 6
    assert result["lease_violations"] == 0
