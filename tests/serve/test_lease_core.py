"""Lease semantics: TTL expiry, fencing tokens, the history audit."""

import pytest

from repro.serve import LeaseCore, TokensExhausted, verify_lease_events


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def core(clock):
    core = LeaseCore(0, clock)
    core.refill(0, 100)
    return core


def test_grant_release_round_trip(core):
    lease = core.grant("a", ttl=5.0, holder="c1")
    assert lease is not None and lease.token == 0
    assert core.grant("a", ttl=5.0) is None  # busy
    assert core.busy == 1
    assert core.release("a", lease.token)
    assert core.grant("a", ttl=5.0).token == 1  # freed, next token


def test_expiry_under_stalled_client(core, clock):
    # The satellite scenario: a client takes a lease and stalls forever.
    lease = core.grant("a", ttl=2.0, holder="stalled")
    clock.t = 1.9
    assert core.grant("a", ttl=2.0) is None  # still valid, still busy
    clock.t = 2.0
    fresh = core.grant("a", ttl=2.0, holder="next")
    assert fresh is not None and fresh.token > lease.token
    assert core.expired == 1
    # The stalled client's eventual release must be fenced, not honoured.
    assert not core.release("a", lease.token)
    assert core.fenced == 1
    assert core.violations == []
    assert verify_lease_events(core.events) == []


def test_sweep_expires_quiet_keys(core, clock):
    core.grant("a", ttl=1.0)
    core.grant("b", ttl=3.0)
    clock.t = 2.0
    assert core.sweep() == 1
    assert "a" not in core.leases and "b" in core.leases


def test_fencing_monotonic_across_refill_handoffs(clock):
    # Keeper handoff: a fresh block from a different keeper (or after a
    # restart) starts above everything granted before.
    core = LeaseCore(0, clock)
    core.refill(0, 2)
    first = core.grant("k", ttl=10.0)
    core.release("k", first.token)
    second = core.grant("k", ttl=10.0)
    core.release("k", second.token)
    with pytest.raises(TokensExhausted):
        core.grant("k", ttl=10.0)
    core.refill(2, 4)  # the next keeper's block
    third = core.grant("k", ttl=10.0)
    assert first.token < second.token < third.token
    assert core.violations == []
    assert verify_lease_events(core.events) == []


def test_refill_gap_is_fine_overlap_is_violation(clock):
    core = LeaseCore(0, clock)
    core.refill(0, 8)
    core.refill(16, 24)  # gap (another reserver took [8,16)) — legal
    assert core.violations == []
    core.refill(20, 32)  # overlaps reserved tokens — mutex must have failed
    assert len(core.violations) == 1
    assert "overlaps" in core.violations[0]


def test_stale_refill_dropped(clock):
    core = LeaseCore(0, clock)
    core.refill(8, 16)
    core.refill(0, 8)  # reordered older block: superseded, dropped
    assert core.stale_refills == 1
    assert core.tokens_available == 8
    assert core.violations == []


def test_release_with_wrong_token_is_fenced(core):
    lease = core.grant("a", ttl=5.0)
    assert not core.release("a", lease.token + 1)
    assert not core.release("missing", 0)
    assert core.fenced == 2
    assert "a" in core.leases  # the actual holder is untouched


def test_grant_validates_ttl(core):
    with pytest.raises(ValueError):
        core.grant("a", ttl=0.0)


def test_refill_validates_block(clock):
    with pytest.raises(ValueError):
        LeaseCore(0, clock).refill(5, 5)


def test_history_audit_catches_planted_violations():
    # Token regression on one key.
    assert verify_lease_events(
        [("grant", "k", 5, 0.0, 10.0), ("release", "k", 5, 1.0, 10.0),
         ("grant", "k", 3, 2.0, 12.0)]
    )
    # Overlapping grants: second issued while the first was still valid.
    assert verify_lease_events(
        [("grant", "k", 1, 0.0, 10.0), ("grant", "k", 2, 5.0, 15.0)]
    )
    # A clean handoff passes.
    assert not verify_lease_events(
        [("grant", "k", 1, 0.0, 2.0), ("expire", "k", 1, 2.0, 2.0),
         ("grant", "k", 2, 2.0, 4.0), ("release", "k", 2, 3.0, 4.0)]
    )


def test_history_recording_can_be_disabled(clock):
    core = LeaseCore(0, clock, record_history=False)
    core.refill(0, 10)
    core.grant("a", ttl=1.0)
    assert core.events is None
