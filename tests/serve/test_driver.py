"""The AsyncioDriver: generator programs interpreted over real time."""

import asyncio

import pytest

from repro.serve import AsyncioDriver, AsyncioSubstrate
from repro.sim import ops
from repro.sim.registers import Register


def _pinger(peer):
    yield ops.send(peer, ("ping", 1))
    while True:
        messages = yield ops.recv()
        for src, payload in messages:
            if payload[0] == "pong":
                return ("done", src, payload[1])
        yield ops.delay(0.005)


def _ponger():
    while True:
        messages = yield ops.recv()
        for src, payload in messages:
            if payload[0] == "ping":
                yield ops.send(src, ("pong", payload[1] + 1))
                return "served"
        yield ops.delay(0.005)


def test_driver_runs_message_programs():
    async def body():
        substrate = AsyncioSubstrate(2, bound=0.05)
        await substrate.start()
        try:
            driver = AsyncioDriver(substrate)
            driver.spawn(_pinger(1), pid=0)
            driver.spawn(_ponger(), pid=1)
            returns = await driver.wait()
            assert returns == {0: ("done", 1, 2), 1: "served"}
        finally:
            await substrate.close()

    asyncio.run(body())


def test_driver_rejects_shared_memory_ops():
    reg = Register("x", 0)

    def bad_program():
        yield reg.read()

    async def body():
        substrate = AsyncioSubstrate(1, bound=0.05)
        await substrate.start()
        try:
            driver = AsyncioDriver(substrate)
            task = driver.spawn(bad_program(), pid=0)
            with pytest.raises(TypeError, match="emulate_registers"):
                await task
        finally:
            await substrate.close()

    asyncio.run(body())


def test_driver_rejects_duplicate_pid_and_bad_scale():
    async def body():
        substrate = AsyncioSubstrate(1, bound=0.05)
        await substrate.start()
        try:
            with pytest.raises(ValueError):
                AsyncioDriver(substrate, time_scale=0.0)
            driver = AsyncioDriver(substrate)

            def idle():
                yield ops.delay(0.001)

            task = driver.spawn(idle(), pid=0)
            with pytest.raises(ValueError):
                driver.spawn(idle(), pid=0)
            await task
        finally:
            await substrate.close()

    asyncio.run(body())


def test_delay_really_elapses():
    # The doorway contract: a Delay not preceded by an empty recv is a
    # genuine suspension — the driver may never shortcut it.
    async def body():
        substrate = AsyncioSubstrate(1, bound=0.05)
        await substrate.start()
        try:
            driver = AsyncioDriver(substrate)

            def doorway():
                yield ops.delay(0.1)
                return "through"

            start = substrate.clock.now
            driver.spawn(doorway(), pid=0)
            returns = await driver.wait()
            elapsed = substrate.clock.now - start
            assert returns[0] == "through"
            assert elapsed >= 0.1
        finally:
            await substrate.close()

    asyncio.run(body())


def test_time_scale_shrinks_model_delays():
    async def body():
        substrate = AsyncioSubstrate(1, bound=0.05)
        await substrate.start()
        try:
            driver = AsyncioDriver(substrate, time_scale=0.01)

            def napper():
                yield ops.local_work(1.0)  # 1 model unit -> 10ms real
                return "rested"

            start = substrate.clock.now
            driver.spawn(napper(), pid=0)
            await driver.wait()
            elapsed = substrate.clock.now - start
            assert 0.01 <= elapsed < 1.0
        finally:
            await substrate.close()

    asyncio.run(body())
