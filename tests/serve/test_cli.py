"""The ``python -m repro.serve`` command line, end to end in subprocesses."""

import json
import os
import subprocess
import sys


def _run(*argv, timeout=240):
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *argv],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


def test_sim_subcommand_reports_counters():
    proc = _run("sim")
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["counters"]["lease_violations"] == 0
    assert doc["counters"]["granted"] > 0


def test_load_subcommand_small_run(tmp_path):
    out = tmp_path / "report.json"
    proc = _run(
        "load", "--clients", "300", "--duration", "2", "--seed", "0",
        "--shards", "2", "--timeout", "5", "--max-p99", "5",
        "--json", str(out),
    )
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["violations"] == []
    assert doc["load"]["granted"] == 300
    assert doc["load"]["errors"] == 0
    assert doc["load"]["latency"]["p99"] is not None
    assert doc["obs"]["metrics"]
