"""Cross-module integration: the same algorithm objects driven through
all three executors, end-to-end pipelines combining several subsystems,
and the public API surface."""

import pytest

import repro
from repro import run_consensus
from repro.algorithms import FischerLock, mutex_session
from repro.core.consensus import TimeResilientConsensus, labeled_decision
from repro.core.derived import Universal
from repro.core.mutex import default_time_resilient_mutex
from repro.core.resilience import check_resilience
from repro.runtime import ThreadedExecutor
from repro.sim import (
    ConstantTiming,
    Engine,
    FailureWindowTiming,
    failure_window,
)
from repro.spec import (
    QueueModel,
    check_linearizability,
    check_mutex,
    history_from_trace,
)
from repro.verify import MutualExclusionProperty, explore


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_run_consensus_from_top_level(self):
        result = repro.run_consensus([0, 1], delta=1.0,
                                     timing=ConstantTiming(0.5))
        assert result.agreed


class TestSameAlgorithmThreeExecutors:
    """One consensus object definition; simulator, checker, threads."""

    def _factories(self, consensus, inputs):
        return {
            pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
            for pid in inputs
        }

    def test_simulator(self):
        result = run_consensus([0, 1], delta=1.0, timing=ConstantTiming(0.5))
        assert result.verdict.ok

    def test_model_checker(self):
        consensus = TimeResilientConsensus(delta=1.0, max_rounds=2)
        from repro.verify import AgreementProperty

        res = explore(self._factories(consensus, {0: 0, 1: 1}),
                      [AgreementProperty()], max_ops=26)
        assert res.ok

    def test_threads(self):
        consensus = TimeResilientConsensus(delta=1.0)
        ex = ThreadedExecutor()
        for pid, v in enumerate([0, 1]):
            ex.spawn(consensus.propose(pid, v), pid=pid)
        res = ex.run(timeout=30.0)
        assert res.ok
        assert len(set(res.returns.values())) == 1


class TestFullPipelineMutex:
    """Lock -> engine -> trace -> spec -> resilience report, in one flow."""

    def test_storm_and_report(self):
        n = 3
        lock = default_time_resilient_mutex(n, delta=1.0)
        timing = FailureWindowTiming(
            ConstantTiming(0.25),
            [failure_window(3.0, 9.0, stretch=20.0)],
        )
        engine = Engine(delta=1.0, timing=timing, max_time=50_000.0)
        for pid in range(n):
            engine.spawn(
                mutex_session(lock, pid, 5, cs_duration=0.2, ncs_duration=0.3),
                pid=pid,
            )
        run = engine.run()
        verdict = check_mutex(run.trace)
        assert verdict.safe
        report = check_resilience(run.trace, psi_deltas=8.0)
        assert report.safety_ok and report.converged


class TestFullPipelineUniversal:
    """Universal object -> trace -> history -> linearizability check."""

    def test_queue_pipeline(self):
        queue = Universal(n=2, delta=1.0, model=QueueModel(), object_id="q")
        engine = Engine(delta=1.0, timing=ConstantTiming(0.5),
                        max_time=100_000.0)

        def client(pid, script):
            handle = queue.client(pid)
            out = []
            for name, args in script:
                out.append((yield from handle.invoke(name, *args)))
            return out

        engine.spawn(client(0, [("enqueue", (1,)), ("enqueue", (2,))]), pid=0)
        engine.spawn(client(1, [("dequeue", ()), ("dequeue", ())]), pid=1)
        run = engine.run()
        history = history_from_trace(run.trace, obj="q")
        assert check_linearizability(history, QueueModel()).ok


class TestCheckerFindsInjectedBug:
    """End-to-end negative control: the toolchain detects a broken lock."""

    def test_broken_fischer_detected_everywhere(self):
        from repro.sim import HookTiming, stall_write_to

        # The targeted stall from E13's scenario: the simulator exhibits
        # the overlap...
        lock = FischerLock(delta=1.0)
        hook = stall_write_to(lock.x.name, duration=3.0, pids=[0], count=1)
        engine = Engine(delta=1.0, timing=HookTiming(ConstantTiming(0.4), hook))
        for pid in range(2):
            engine.spawn(
                mutex_session(lock, pid, 1, cs_duration=4.0), pid=pid
            )
        run = engine.run()
        verdict = check_mutex(run.trace)
        assert not verdict.safe  # the simulator run shows the overlap

        # ...and the model checker proves some interleaving always exists.
        res = explore(
            {pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
             for pid in range(2)},
            [MutualExclusionProperty()],
            max_ops=25,
        )
        assert not res.ok
