"""Smoke tests: every shipped example must run to completion.

Each example asserts its own domain properties internally (agreement,
exclusion, linearizability, convergence), so a clean exit is a real
end-to-end check, not just an import test.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(ALL_EXAMPLES) >= 6


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs_clean(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} produced no output"
