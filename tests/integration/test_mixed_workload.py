"""A full-system stress scenario: locks, consensus instances, derived
objects and failures all sharing one engine run — the closest thing to a
production workload the simulator can host."""

import pytest

from repro.algorithms import mutex_session
from repro.core.consensus import labeled_decision
from repro.core.derived import ConsensusService
from repro.core.mutex import default_time_resilient_mutex
from repro.sim import (
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    RunStatus,
    UniformTiming,
    failure_window,
    ops,
)
from repro.sim.registers import RegisterNamespace
from repro.spec import check_mutual_exclusion


@pytest.mark.parametrize("seed", [0, 1])
def test_mixed_workload_all_guarantees_hold(seed):
    n_lockers = 3
    n_voters = 3
    lock = default_time_resilient_mutex(
        n_lockers, delta=1.0, namespace=RegisterNamespace(("mix", seed, "lock"))
    )
    service = ConsensusService(
        delta=1.0, namespace=RegisterNamespace(("mix", seed, "svc"))
    )

    timing = FailureWindowTiming(
        UniformTiming(0.05, 1.0, seed=seed),
        [failure_window(2.0, 8.0, stretch=20.0),
         failure_window(20.0, 23.0, stretch=15.0, pids=[0, 3])],
    )
    # One voter crashes mid-protocol.
    crashes = CrashSchedule(after_steps={n_lockers + 1: 9})

    engine = Engine(delta=1.0, timing=timing, crashes=crashes,
                    max_time=100_000.0)

    # Lock clients (pids 0..2).
    for pid in range(n_lockers):
        engine.spawn(
            mutex_session(lock, pid, 4, cs_duration=0.3, ncs_duration=0.4),
            pid=pid,
        )

    # Consensus voters (pids 3..5), deciding two epochs each.
    def voter(pid, proposal):
        first = yield from service.propose("epoch-1", pid, proposal)
        yield ops.local_work(5.0)
        second = yield from service.propose("epoch-2", pid, 1 - proposal)
        return (first, second)

    for i in range(n_voters):
        pid = n_lockers + i
        engine.spawn(voter(pid, i % 2), pid=pid)

    result = engine.run()
    assert result.status is RunStatus.COMPLETED

    # Lock side: every session completed, no exclusion violation.
    assert check_mutual_exclusion(result.trace) == []
    assert len(result.trace.cs_intervals()) == 4 * n_lockers

    # Consensus side: survivors agree per epoch, values are proposals.
    outcomes = [result.returns[pid] for pid in range(n_lockers, n_lockers + n_voters)
                if pid in result.returns]
    assert outcomes  # the crashed voter is excused, others finished
    firsts = {o[0] for o in outcomes}
    seconds = {o[1] for o in outcomes}
    assert len(firsts) == 1 and len(seconds) == 1
    assert firsts <= {0, 1} and seconds <= {0, 1}

    # The failure windows really produced timing failures.
    assert result.trace.timing_failures()
