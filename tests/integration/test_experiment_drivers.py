"""Integration tests: the experiment drivers produce well-formed tables
with the claimed shapes (reduced parameters — the full runs live in
benchmarks/)."""

import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    _experiment_order,
    run_e1,
    run_e4,
    run_e5,
    run_e9,
    run_e11,
    run_all,
)
from repro.analysis.tables import ExperimentTable


def test_registry_covers_e1_to_e13_plus_networked():
    expected = [f"E{i}" for i in range(1, 14)] + ["E1N", "E8N"]
    assert sorted(ALL_EXPERIMENTS, key=_experiment_order) == sorted(
        expected, key=_experiment_order
    )
    assert all(callable(fn) for fn in ALL_EXPERIMENTS.values())


def test_run_all_unknown_id_rejected():
    with pytest.raises(SystemExit):
        run_all(["E99"])


def test_run_all_subset():
    (table,) = run_all(["E4"])
    assert isinstance(table, ExperimentTable)
    assert table.experiment_id == "E4"


class TestReducedDrivers:
    def test_e1_reduced(self):
        table = run_e1(ns=(1, 2), seeds=(0,))
        assert len(table.rows) == 2
        assert all(table.column("within 15Δ"))

    def test_e4_exact_seven(self):
        table = run_e4()
        assert table.rows[0][1] == 7

    def test_e5_reduced(self):
        table = run_e5(ns=(2, 4))
        per_proc = table.column("steps per process")
        assert per_proc[0] == per_proc[1]

    def test_e9_reduced(self):
        table = run_e9(n=4)
        names = table.column("algorithm")
        assert "fischer" in names
        assert any("alg3" in str(n) for n in names)

    def test_e11_reduced(self):
        table = run_e11(est_ratios=(1.0, 0.25))
        rounds = table.column("aat rounds")
        assert rounds[1] > rounds[0]

    def test_tables_render_and_markdown(self):
        table = run_e4()
        assert "[E4]" in table.render()
        assert table.to_markdown().startswith("**[E4]")
