"""Corner cases of program/op recognition in :mod:`repro.lint.programs`.

These pin down the syntactic edges the flow layer leans on: conditional
yields, tuple-unpacked op bindings, nested generators, and ``yield
from`` of attribute chains.
"""

from __future__ import annotations

import ast

from repro.lint.programs import find_programs, is_op_expression, terminal_name


def programs_in(source: str):
    return {p.qualname: p for p in find_programs(ast.parse(source))}


def test_conditional_yield_is_an_op_expression():
    expr = ast.parse("a.read() if fast else b.read()", mode="eval").body
    assert is_op_expression(expr)


def test_conditional_yield_with_one_non_op_arm_is_not():
    expr = ast.parse("a.read() if fast else 42", mode="eval").body
    assert not is_op_expression(expr)


def test_conditional_yield_classifies_the_function_as_program():
    progs = programs_in(
        "def entry(pid):\n"
        "    yield a.read() if fast else b.read()\n"
    )
    assert progs["entry"].is_program


def test_tuple_unpacked_op_binding_feeds_op_locals():
    progs = programs_in(
        "def entry(pid) -> 'Program':\n"
        "    first, second = reg.read(), reg.write(1)\n"
        "    yield first\n"
        "    yield second\n"
    )
    assert progs["entry"].op_locals == {"first", "second"}


def test_tuple_unpacking_mixed_values_binds_only_ops():
    progs = programs_in(
        "def entry(pid) -> 'Program':\n"
        "    op, count = reg.read(), 0\n"
        "    yield op\n"
    )
    assert progs["entry"].op_locals == {"op"}


def test_tuple_unpacking_length_mismatch_binds_nothing():
    # ``a, b = some_pair()`` cannot be matched pairwise; no binding is
    # recorded rather than a wrong one.
    progs = programs_in(
        "def entry(pid) -> 'Program':\n"
        "    a, b = make_ops()\n"
        "    yield reg.read()\n"
    )
    assert progs["entry"].op_locals == set()


def test_nested_tuple_unpacking_recurses():
    progs = programs_in(
        "def entry(pid) -> 'Program':\n"
        "    (a, b), c = (reg.read(), reg.write(1)), ops.delay(0.1)\n"
        "    yield a\n"
    )
    assert progs["entry"].op_locals == {"a", "b", "c"}


def test_nested_generator_yields_stay_in_their_scope():
    progs = programs_in(
        "def entry(pid) -> 'Program':\n"
        "    def helper():\n"
        "        yield reg.write(1)\n"
        "    yield reg.read()\n"
    )
    assert len(progs["entry"].yields) == 1
    assert len(progs["entry.helper"].yields) == 1
    # The inner generator yields a real op, so it classifies as a
    # program on its own merits (no annotation needed).
    assert progs["entry.helper"].is_program


def test_nested_non_op_generator_is_not_a_program():
    progs = programs_in(
        "def entry(pid) -> 'Program':\n"
        "    def names():\n"
        "        yield 'x'\n"
        "    yield reg.read()\n"
    )
    assert not progs["entry.names"].is_program
    assert progs["entry"].is_program


def test_yield_from_attribute_access_is_collected():
    # ``yield from self.inner.entry(pid)`` delegates through an
    # attribute chain; the collector must record it and ``terminal_name``
    # must expose the method name for resolution.
    progs = programs_in(
        "class Outer:\n"
        "    def entry(self, pid) -> 'Program':\n"
        "        yield from self.inner.entry(pid)\n"
    )
    info = progs["Outer.entry"]
    (delegation,) = info.yield_froms
    assert isinstance(delegation.value, ast.Call)
    assert terminal_name(delegation.value.func) == "entry"


def test_yield_from_bare_attribute_is_collected():
    # Not a call at all: delegating to a pre-built generator held on an
    # attribute.  Still a delegation, still collected.
    progs = programs_in(
        "class Outer:\n"
        "    def entry(self, pid) -> 'Program':\n"
        "        yield from self.pending\n"
    )
    (delegation,) = progs["Outer.entry"].yield_froms
    assert terminal_name(delegation.value) == "pending"


def test_op_local_bound_in_loop_header_is_ignored():
    # ``for op in ...`` is not an op construction; the name must not
    # leak into op_locals.
    progs = programs_in(
        "def entry(pid) -> 'Program':\n"
        "    for op in pending:\n"
        "        yield op\n"
    )
    assert progs["entry"].op_locals == set()
