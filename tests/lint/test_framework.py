"""Framework-level tests: registry, findings, directives, suppression forms."""

from __future__ import annotations

import pytest

from repro.lint import Finding, Severity, all_rules, lint_source
from repro.lint.context import scan_directives
from repro.lint.registry import resolve_codes, rules_by_code


def test_registry_has_the_eleven_rules():
    codes = [rule.code for rule in all_rules()]
    assert codes == [
        "TMF001",
        "TMF002",
        "TMF003",
        "TMF004",
        "TMF005",
        "TMF006",
        "TMF007",
        "TMF101",
        "TMF102",
        "TMF103",
        "TMF104",
    ]


def test_every_rule_documents_itself():
    for rule in all_rules():
        assert rule.name, rule.code
        assert rule.description, rule.code
        assert rule.severity in (Severity.WARNING, Severity.ERROR)


def test_finding_render_and_dict():
    finding = Finding(
        code="TMF001",
        message="bad yield",
        path="x.py",
        line=3,
        column=4,
        severity=Severity.ERROR,
        rule="yield-discipline",
    )
    # ``column`` is stored 1-based (flake8 convention); render echoes it.
    assert finding.render() == "x.py:3:4: TMF001 [error] bad yield"
    as_dict = finding.to_dict()
    assert as_dict["code"] == "TMF001"
    assert as_dict["line"] == 3
    assert as_dict["column"] == 4
    assert as_dict["severity"] == "error"


def test_text_and_json_columns_agree_one_based():
    # Regression: text output used to add 1 to an already-0-based column
    # while JSON reported the raw AST offset, so the two disagreed and
    # neither matched flake8.  A finding on the first column of a line
    # must report column 1 in both renderings.
    findings = lint_source('yield 42\n if True:\n', path="drift.py")
    # the module-level yield is a syntax error -> TMF000 at 1:7 per CPython
    (finding,) = findings
    assert finding.code == "TMF000"
    assert finding.column == finding.to_dict()["column"]
    assert finding.render().startswith(
        f"drift.py:{finding.line}:{finding.column}:"
    )


def test_rule_findings_are_one_based_like_flake8():
    # ``yield 42`` at the very start of a line: flake8 would say col 5
    # (4 spaces of indent + 1).  Both renderings must agree on that.
    findings = lint_source(_BAD_YIELD)
    (finding,) = findings
    assert finding.column == 11  # "    yield 42" -> value starts at col 11
    assert ":2:11:" in finding.render()
    assert finding.to_dict()["column"] == 11


def test_syntax_error_becomes_tmf000():
    findings = lint_source("def broken(:\n", path="broken.py")
    assert len(findings) == 1
    assert findings[0].code == "TMF000"
    assert findings[0].path == "broken.py"
    assert "parse" in findings[0].message


_BAD_YIELD = """\
def entry(pid) -> "Program":
    yield 42
"""


def test_select_narrows_the_rule_set():
    assert lint_source(_BAD_YIELD, select=["TMF005"]) == []
    assert [f.code for f in lint_source(_BAD_YIELD, select=["TMF001"])] == ["TMF001"]


def test_ignore_drops_codes():
    assert lint_source(_BAD_YIELD, ignore=["TMF001"]) == []


def test_resolve_codes_validates():
    assert resolve_codes("TMF001, TMF004") == ["TMF001", "TMF004"]
    with pytest.raises(ValueError, match="unknown rule code"):
        resolve_codes("TMF999")


def test_rules_by_code_is_a_copy():
    mapping = rules_by_code()
    mapping.clear()
    assert rules_by_code()  # registry unaffected


def test_line_suppression_single_code():
    source = _BAD_YIELD.replace("yield 42", "yield 42  # repro-lint: disable=TMF001")
    assert lint_source(source) == []


def test_line_suppression_all():
    source = _BAD_YIELD.replace("yield 42", "yield 42  # repro-lint: disable=all")
    assert lint_source(source) == []


def test_line_suppression_wrong_code_keeps_finding():
    source = _BAD_YIELD.replace("yield 42", "yield 42  # repro-lint: disable=TMF005")
    assert [f.code for f in lint_source(source)] == ["TMF001"]


def test_file_suppression():
    source = "# repro-lint: disable-file=TMF001\n" + _BAD_YIELD
    assert lint_source(source) == []


def test_directive_in_string_literal_is_ignored():
    source = 's = "# repro-lint: disable=TMF001"\n' + _BAD_YIELD
    assert [f.code for f in lint_source(source)] == ["TMF001"]


def test_directive_prose_after_double_space():
    directives = scan_directives(
        "# repro-lint: registers-only  the paper's section 3 model\n"
    )
    assert [d.name for d in directives] == ["registers-only"]


def test_directive_prose_after_dash():
    directives = scan_directives("x = 1  # repro-lint: disable=TMF005 - seeded\n")
    assert len(directives) == 1
    assert directives[0].name == "disable"
    assert directives[0].codes == ("TMF005",)


def test_directive_multiple_codes():
    directives = scan_directives("y = 2  # repro-lint: disable=TMF001,TMF004\n")
    assert directives[0].codes == ("TMF001", "TMF004")


def test_findings_sorted_by_position():
    source = (
        'def entry(pid) -> "Program":\n'
        "    yield 42\n"
        "    yield\n"
    )
    findings = lint_source(source)
    assert [f.line for f in findings] == sorted(f.line for f in findings)
