"""The xcheck contract: registry algorithms validate, planted lies fail."""

from __future__ import annotations

import os

import pytest

from repro.lint.flow.xcheck import (
    XCheckTarget,
    default_targets,
    run_target,
    run_xcheck,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

pytestmark = pytest.mark.lint


def test_registry_algorithms_have_no_contradictions():
    contradictions = run_xcheck()
    assert contradictions == [], "\n" + "\n".join(
        c.render() for c in contradictions
    )


def test_every_experiment_algorithm_is_covered():
    names = {t.name for t in default_targets()}
    assert {
        "fischer",
        "peterson2",
        "filter",
        "tournament",
        "bakery",
        "black_white_bakery",
        "lamport_fast",
        "bar_david",
        "at_consensus",
        "aat_consensus",
    } <= names


def _liar_target() -> XCheckTarget:
    """Static side says read-only; dynamic side writes the register."""
    from repro.sim import ops
    from repro.sim.registers import RegisterNamespace

    def make():
        ns = RegisterNamespace("liar")
        reg = ns.register("x", 0)

        def prog():
            value = yield reg.read()
            yield reg.write(value + 1)  # the unpredicted write

        return [(0, prog())]

    return XCheckTarget(
        name="liar",
        module=os.path.join(FIXTURES, "xcheck_liar.py"),
        prefix="liar",
        make=make,
    )


def test_planted_contradiction_is_caught():
    contradictions = run_xcheck(targets=[_liar_target()])
    assert contradictions, "xcheck accepted a static access set that lies"
    messages = " | ".join(c.render() for c in contradictions)
    assert "write" in messages and "'x'" in messages


def test_idle_target_is_a_contradiction():
    # A harness that exercises nothing must not count as validated.
    from repro.sim import ops

    def make():
        def prog():
            yield ops.local_work(1)

        return [(0, prog())]

    target = XCheckTarget(
        name="idle",
        module=os.path.join(FIXTURES, "xcheck_liar.py"),
        prefix="liar",
        make=make,
    )
    contradictions = run_xcheck(targets=[target])
    assert any("touched no register" in c.message for c in contradictions)
