"""Tier-1 gate: the shipped tree must lint clean.

This is the dogfooding contract — every algorithm, core construction and
example in the repo conforms to the paper's model as far as the analyzer
can see.  New code that violates a rule fails this test; justified
exceptions must carry an inline ``# repro-lint: disable=...`` with their
reasoning, which keeps every deviation greppable.
"""

from __future__ import annotations

import os

import pytest

from repro.lint import lint_paths

pytestmark = pytest.mark.lint

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _tree(*parts: str) -> str:
    return os.path.join(ROOT, *parts)


@pytest.mark.parametrize(
    "relpath",
    [
        os.path.join("src", "repro", "algorithms"),
        os.path.join("src", "repro", "core"),
        os.path.join("src", "repro", "net"),
        "examples",
    ],
)
def test_tree_is_lint_clean(relpath):
    findings = lint_paths([_tree(relpath)])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_whole_src_tree_is_lint_clean():
    findings = lint_paths([_tree("src")])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)
