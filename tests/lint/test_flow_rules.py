"""Flow rules TMF101-104: fixtures, suppression, and the --flow gate."""

from __future__ import annotations

import os

import pytest

from repro.lint import all_rules, lint_file, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def codes_and_lines(findings):
    return [(f.code, f.line) for f in findings]


#: fixture file -> exact (code, line) expectations under --flow.
FLOW_EXPECTED = {
    "tmf101_bad.py": [
        ("TMF101", 10),  # while True, no exit at all
        ("TMF101", 14),  # spin on a register nobody writes
    ],
    "tmf102_bad.py": [
        ("TMF102", 11),  # tainted branch
        ("TMF102", 12),  # tainted delay duration
    ],
    "tmf103_bad.py": [
        ("TMF103", 9),  # bare floor-half majority assignment
        ("TMF103", 13),  # constant threshold below majority for quorum-n=5
        ("TMF103", 16),  # inline floor-half reply wait
    ],
    "tmf104_bad.py": [
        ("TMF104", 19),  # annotated array delegated with a foreign index
        ("TMF104", 20),  # scalar writer root #1 (via delegation)
        ("TMF104", 23),  # scalar writer root #2 (via delegation)
    ],
}


@pytest.mark.parametrize("name", sorted(FLOW_EXPECTED))
def test_flow_rule_fires_at_seeded_lines(name):
    findings = lint_file(fixture(name), flow=True)
    assert codes_and_lines(findings) == FLOW_EXPECTED[name]


@pytest.mark.parametrize(
    "name",
    [bad.replace("_bad", "_suppressed") for bad in sorted(FLOW_EXPECTED)],
)
def test_flow_suppression_comment_silences(name):
    assert lint_file(fixture(name), flow=True) == []


@pytest.mark.parametrize("name", sorted(FLOW_EXPECTED))
def test_flow_rules_are_off_by_default(name):
    assert lint_file(fixture(name)) == []


def test_explicit_select_enables_a_flow_rule_without_flow():
    findings = lint_file(fixture("tmf101_bad.py"), select=["TMF101"])
    assert {f.code for f in findings} == {"TMF101"}


def test_flow_rules_marked_requires_flow():
    flow_codes = {r.code for r in all_rules() if r.requires_flow}
    assert flow_codes == {"TMF101", "TMF102", "TMF103", "TMF104"}


def test_spin_on_written_register_is_clean():
    # Fischer's shape: the spin register is written elsewhere in the
    # module, so another process can always release the loop.
    source = (
        "class Lock:\n"
        "    def __init__(self, ns):\n"
        "        self.x = ns.register('x', 0)\n"
        "    def entry(self, pid) -> 'Program':\n"
        "        while True:\n"
        "            value = yield self.x.read()\n"
        "            if value == 0:\n"
        "                break\n"
        "        yield self.x.write(pid)\n"
        "    def exit(self, pid) -> 'Program':\n"
        "        yield self.x.write(0)\n"
    )
    assert lint_source(source, flow=True) == []


def test_counter_bounded_spin_is_clean():
    # An exit through a locally-advanced counter is register-independent.
    source = (
        "class Lock:\n"
        "    def __init__(self, ns):\n"
        "        self.dead = ns.register('dead', 0)\n"
        "    def entry(self, pid) -> 'Program':\n"
        "        polls = 0\n"
        "        while True:\n"
        "            value = yield self.dead.read()\n"
        "            polls = polls + 1\n"
        "            if value == 1 or polls > 10:\n"
        "                break\n"
    )
    assert lint_source(source, flow=True) == []


def test_delta_taint_silent_without_declaration():
    source = (
        "DELTA = 1.0\n"
        "def entry(pid) -> 'Program':\n"
        "    if DELTA > 1:\n"
        "        yield ops.delay(DELTA)\n"
    )
    assert lint_source(source, flow=True) == []


def test_proper_majority_is_clean():
    source = (
        "# repro-lint: messages-only\n"
        "class Q:\n"
        "    def __init__(self, n):\n"
        "        self.majority = n // 2 + 1\n"
        "    def query(self, pid) -> 'Program':\n"
        "        acks = {}\n"
        "        while len(acks) < self.majority:\n"
        "            src, message = yield ops.recv()\n"
        "            acks[src] = message\n"
    )
    assert lint_source(source, flow=True) == []


def test_own_pid_delegation_is_clean():
    source = (
        "def mark(slot, i) -> 'Program':\n"
        "    yield slot[i].write(True)\n"
        "class Lock:\n"
        "    def __init__(self, ns):\n"
        "        self.flags = ns.array('flags', False)  # repro-lint: single-writer\n"
        "    def entry(self, pid) -> 'Program':\n"
        "        yield from mark(self.flags, pid)\n"
    )
    assert lint_source(source, flow=True) == []


def test_pid_sensitivity_propagates_through_chains():
    # entry -> outer(j) -> mark(slot, i): j must be the caller's own pid.
    source = (
        "def mark(slot, i) -> 'Program':\n"
        "    yield slot[i].write(True)\n"
        "def outer(slots, j) -> 'Program':\n"
        "    yield from mark(slots, j)\n"
        "class Lock:\n"
        "    def __init__(self, ns):\n"
        "        self.flags = ns.array('flags', False)  # repro-lint: single-writer\n"
        "    def entry(self, pid) -> 'Program':\n"
        "        yield from outer(self.flags, pid + 1)\n"
    )
    findings = lint_source(source, flow=True)
    assert [(f.code, f.line) for f in findings] == [("TMF104", 9)]


def test_shipped_tree_is_flow_clean():
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from repro.lint import lint_paths

    findings = lint_paths(
        [os.path.join(root, "src"), os.path.join(root, "examples")], flow=True
    )
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)
