"""Fixture-based tests: each rule fires at the seeded lines, and its
suppression comment silences it.

The fixtures under ``fixtures/`` are never imported — the analyzer reads
source only — so they are free to contain deliberately broken programs.
"""

from __future__ import annotations

import os

import pytest

from repro.lint import lint_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def codes_and_lines(findings):
    return [(f.code, f.line) for f in findings]


#: fixture file -> exact (code, line) expectations, in sorted order.
EXPECTED = {
    "tmf001_bad.py": [
        ("TMF001", 11),  # bare yield
        ("TMF001", 12),  # yield 42
        ("TMF001", 13),  # yield [op]
        ("TMF001", 17),  # annotation-classified program yielding a name
    ],
    "tmf002_bad.py": [
        ("TMF002", 4),  # banned import
        ("TMF002", 9),  # fetch_and_add by name
        ("TMF002", 13),  # ops.compare_and_swap by attribute
    ],
    "tmf002_msgonly_bad.py": [
        ("TMF002", 4),  # Register import in a messages-only module
        ("TMF002", 10),  # ns.register(...) creation
        ("TMF002", 12),  # RMW reference
    ],
    "tmf002_regonly_net_bad.py": [
        ("TMF002", 4),  # message helper import in a registers-only module
        ("TMF002", 10),  # ops.broadcast call
        ("TMF002", 11),  # imported send call
        ("TMF002", 12),  # Recv class reference
    ],
    "tmf002_conflict_bad.py": [
        ("TMF002", 2),  # both substrate directives at once
    ],
    "tmf003_bad.py": [
        ("TMF003", 9),  # mutable default argument
        ("TMF003", 11),  # self attribute assignment
        ("TMF003", 12),  # append on module global
        ("TMF003", 13),  # subscript write into self state
        ("TMF003", 16),  # global declaration
    ],
    "tmf004_bad.py": [
        ("TMF004", 11),  # random.random()
        ("TMF004", 12),  # time.time()
        ("TMF004", 13),  # urandom via from-import
    ],
    "tmf005_bad.py": [
        ("TMF005", 7),  # delay(1.5)
        ("TMF005", 8),  # ops.delay(0)
        ("TMF005", 11),  # Delay(-2)
    ],
    "tmf006_bad.py": [
        ("TMF006", 11),  # foreign array cell
        ("TMF006", 12),  # scalar writer body #1
        ("TMF006", 15),  # scalar writer body #2
    ],
    "tmf006_msgonly_bad.py": [
        ("TMF006", 4),  # dangling single-writer in a messages-only module
    ],
    "tmf007_bad.py": [
        ("TMF007", 11),  # after continue
        ("TMF007", 16),  # after return
    ],
}


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_rule_fires_at_seeded_lines(name):
    findings = lint_file(fixture(name))
    assert codes_and_lines(findings) == EXPECTED[name]


@pytest.mark.parametrize(
    "name",
    [bad.replace("_bad", "_suppressed") for bad in sorted(EXPECTED)],
)
def test_suppression_comment_silences(name):
    assert lint_file(fixture(name)) == []


def test_conformant_program_is_clean():
    assert lint_file(fixture("clean.py")) == []


def test_clean_fixture_exercises_the_rules_it_claims():
    # Guard against the clean fixture passing because nothing was
    # recognized as a program at all.
    from repro.lint.context import build_context

    with open(fixture("clean.py")) as handle:
        ctx = build_context("clean.py", handle.read())
    program_names = {p.qualname for p in ctx.programs if p.is_program}
    assert {"ConformantLock.entry", "ConformantLock.exit", "ConformantLock.unlock"} <= (
        program_names
    )


def test_severities():
    by_code = {f.code: f for f in lint_file(fixture("tmf005_bad.py"))}
    assert by_code["TMF005"].severity.value == "warning"
    by_code = {f.code: f for f in lint_file(fixture("tmf002_bad.py"))}
    assert by_code["TMF002"].severity.value == "error"
