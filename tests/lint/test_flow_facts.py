"""Abstract-interpretation facts: registers, accesses, closure, taint."""

from __future__ import annotations

import pytest

from repro.lint.context import build_context
from repro.lint.flow.facts import LEAF, OPAQUE, PARAM, ModuleFlow, module_flow


def flow_for(source: str) -> ModuleFlow:
    return module_flow(build_context("<test>", source))


LOCK = """\
class Lock:
    def __init__(self, ns):
        self.x = ns.register("x", 0)
        self.b = ns.array("slots", False)  # repro-lint: single-writer

    def entry(self, pid) -> "Program":
        yield self.b[pid].write(True)
        value = yield self.x.read()
        yield self.x.write(pid)

    def exit(self, pid) -> "Program":
        yield self.x.write(0)
"""


def test_register_table_maps_attr_to_leaf():
    flow = flow_for(LOCK)
    assert flow.registers["x"].leaf == "x"
    assert flow.registers["x"].kind == "register"
    assert not flow.registers["x"].annotated
    # The leaf is the creation-site string, not the attribute name.
    assert flow.registers["b"].leaf == "slots"
    assert flow.registers["b"].kind == "array"
    assert flow.registers["b"].annotated


def test_access_sets_resolve_to_leafs():
    flow = flow_for(LOCK)
    targets, complete = flow.closure_accesses("Lock.entry")
    assert complete
    assert {(t.kind, t.name) for t in targets} == {
        ("write", "slots"),
        ("read", "x"),
        ("write", "x"),
    }


def test_written_leafs_module_wide():
    flow = flow_for(LOCK)
    written, complete = flow.written_leafs()
    assert complete
    assert written == {"slots", "x"}


DELEGATING = """\
def flip(handle) -> "Program":
    yield handle.write(1)

class Lock:
    def __init__(self, ns):
        self.x = ns.register("x", 0)

    def entry(self, pid) -> "Program":
        yield from flip(self.x)
"""


def test_closure_substitutes_call_site_arguments():
    flow = flow_for(DELEGATING)
    # The helper alone only knows a parameter-relative write.
    helper_targets, _ = flow.closure_accesses("flip")
    assert {(t.cls, t.name) for t in helper_targets} == {(PARAM, "handle")}
    # The caller's closure substitutes its concrete handle.
    targets, complete = flow.closure_accesses("Lock.entry")
    assert complete
    assert {(t.cls, t.kind, t.name) for t in targets} == {(LEAF, "write", "x")}


ALIASED = """\
def acquire(flag0, flag1, side) -> "Program":
    my_flag = flag0 if side == 0 else flag1
    yield my_flag.write(True)
"""


def test_alias_map_tracks_handle_threading():
    flow = flow_for(ALIASED)
    facts = flow.facts_for("acquire")
    assert facts.aliases["my_flag"] == {"flag0", "flag1"}
    # The write may target either parameter.
    assert {(t.cls, t.name) for _s, t in facts.accesses} == {
        (PARAM, "flag0"),
        (PARAM, "flag1"),
    }


def test_dynamic_dispatch_is_incomplete():
    flow = flow_for(
        "class Outer:\n"
        "    def entry(self, pid) -> 'Program':\n"
        "        yield from self.inner.entry(pid)\n"
    )
    _targets, complete = flow.closure_accesses("Outer.entry")
    assert not complete


def test_unresolvable_handle_is_opaque():
    flow = flow_for(
        "def entry(pid) -> 'Program':\n"
        "    yield registry[pid].read()\n"
    )
    facts = flow.facts_for("entry")
    ((_site, target),) = [a for a in facts.accesses]
    assert target.cls == OPAQUE


TAINTED = """\
DELTA = 1.0

def entry(pid) -> "Program":
    bound = DELTA * 2
    safety = bound + 1
    clean = 5
    if safety > 2:
        yield ops.delay(safety)
    if clean > 2:
        yield ops.delay(clean)
"""


def test_taint_propagates_through_assignments():
    flow = flow_for(TAINTED)
    facts = flow.facts_for("entry")
    assert {"bound", "safety"} <= facts.tainted_locals
    assert "clean" not in facts.tainted_locals
    assert {(s.kind, s.detail) for s in facts.taint_sites} == {
        ("branch", "safety > 2"),
        ("delay", "safety"),
    }


def test_reachable_kinds_closure():
    flow = flow_for(DELEGATING)
    kinds, complete = flow.closure_kinds("Lock.entry")
    assert complete
    assert kinds == frozenset({"write"})


def test_fact_counts_are_positive_and_stable():
    flow_a = flow_for(LOCK)
    flow_b = flow_for(LOCK)
    assert flow_a.cfg_node_count == flow_b.cfg_node_count > 0
    assert flow_a.fact_count == flow_b.fact_count > 0


def test_module_flow_is_cached_per_context():
    ctx = build_context("<test>", LOCK)
    assert module_flow(ctx) is module_flow(ctx)
