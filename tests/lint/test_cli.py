"""CLI behaviour: exit codes, JSON output, rule listing."""

from __future__ import annotations

import json
import os

from repro.lint.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def test_clean_file_exits_zero(capsys):
    assert main([fixture("clean.py")]) == 0
    out = capsys.readouterr().out
    assert "1 file(s) checked" in out
    assert "clean" in out


def test_findings_exit_one(capsys):
    assert main([fixture("tmf001_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "TMF001" in out
    assert "tmf001_bad.py" in out


def test_no_paths_exits_two(capsys):
    assert main([]) == 2
    assert "no paths" in capsys.readouterr().err


def test_unknown_code_exits_two(capsys):
    assert main(["--select", "TMF999", fixture("clean.py")]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_empty_directory_exits_two(tmp_path, capsys):
    assert main([str(tmp_path)]) == 2
    assert "no Python files" in capsys.readouterr().err


def test_json_output_parses(capsys):
    assert main(["--format", "json", fixture("tmf005_bad.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1  # versioned findings schema
    assert doc["files_checked"] == 1
    assert doc["warnings"] == 3
    assert doc["errors"] == 0
    codes = {f["code"] for f in doc["findings"]}
    assert codes == {"TMF005"}
    first = doc["findings"][0]
    assert {"code", "message", "path", "line", "column", "severity"} <= set(first)


def test_select_filters_directory_run(capsys):
    # The whole fixture directory has many findings, but selecting one
    # rule narrows to that rule's fixtures only.
    assert main(["--format", "json", "--select", "TMF007", FIXTURES]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert {f["code"] for f in doc["findings"]} == {"TMF007"}


def test_output_writes_report_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.json"
    code = main(
        ["--format", "json", "--output", str(out_file), fixture("tmf005_bad.py")]
    )
    assert code == 1
    assert capsys.readouterr().out == ""  # report went to the file
    doc = json.loads(out_file.read_text())
    assert doc["schema"] == 1
    assert {f["code"] for f in doc["findings"]} == {"TMF005"}


def test_output_to_unwritable_path_exits_two(tmp_path, capsys):
    target = tmp_path / "missing-dir" / "report.json"
    assert main(["--output", str(target), fixture("clean.py")]) == 2
    assert "cannot write" in capsys.readouterr().err


def test_flow_flag_enables_flow_rules(capsys):
    assert main([fixture("tmf101_bad.py")]) == 0  # off by default
    capsys.readouterr()
    assert main(["--flow", fixture("tmf101_bad.py")]) == 1
    assert "TMF101" in capsys.readouterr().out


def test_help_documents_exit_codes(capsys):
    try:
        main(["--help"])
    except SystemExit as exc:
        assert exc.code == 0
    out = capsys.readouterr().out
    assert "exit codes:" in out
    assert "findings reported" in out
    assert "usage error" in out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("TMF001", "TMF007"):
        assert code in out
    assert "[error]" in out and "[warning]" in out
