"""TMF103 violations silenced for the whole file (deliberate sub-quorum)."""

# repro-lint: messages-only
# repro-lint: quorum-n=5
# repro-lint: disable-file=TMF103


class HalfQuorum:
    def __init__(self, replicas):
        self.majority = replicas // 2

    def query(self, pid) -> "Program":
        acks = {}
        while len(acks) < 2:
            src, message = yield ops.recv()
            acks[src] = message
        while len(acks) < self.replicas // 2:
            src, message = yield ops.recv()
            acks[src] = message
