"""TMF004 violations silenced for the whole file."""

# repro-lint: disable-file=TMF004

import random
import time
from os import urandom


class FlakyConsensus:
    def propose(self, pid, value):
        yield self.x[pid].write(value)
        if random.random() < 0.5:
            yield self.x[pid].write(time.time())
        salt = urandom(4)
        return salt
