"""TMF001 violations with working suppression comments."""


class BrokenLock:
    def entry(self, pid):
        value = yield self.x.read()
        if value is None:
            yield  # repro-lint: disable=TMF001
        yield 42  # repro-lint: disable=TMF001
        yield [self.x.read()]  # repro-lint: disable=all

    def exit(self, pid) -> "Program":
        yield pid  # repro-lint: disable=TMF001
