# repro-lint: messages-only  (fixture)
# repro-lint: disable-file=TMF006
"""TMF006 dangling annotation silenced file-wide."""

# repro-lint: single-writer — dead annotation, suppressed above

from repro.sim import ops


def relay(pid):
    payload = yield ops.recv()
    yield ops.send(0, payload)
