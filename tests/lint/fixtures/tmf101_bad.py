"""Seeded TMF101 violations: spin loops no other process can release."""


class WedgedLock:
    def __init__(self, ns):
        self.x = ns.register("x", 0)
        self.dead = ns.register("dead", 0)

    def entry(self, pid):
        while True:  # line 10: no exit at all
            yield self.x.read()

    def exit(self, pid):
        while True:  # line 14: spins on a register nobody writes
            value = yield self.dead.read()
            if value == 1:
                break
