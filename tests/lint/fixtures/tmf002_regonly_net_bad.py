# repro-lint: registers-only  (fixture: shared-memory module caught networking)
"""Seeded TMF002 violations: message primitives in a registers-only module."""

from repro.sim.ops import send  # line 4: banned helper import

from repro.sim import ops


def entry(pid):
    yield ops.broadcast(("hello", pid))  # line 10: message helper call
    yield send(0, "direct")  # line 11: imported helper call
    yield ops.Recv()  # line 12: message op class
