"""TMF101 violations silenced per line (a justified server loop)."""


class WedgedLock:
    def __init__(self, ns):
        self.x = ns.register("x", 0)
        self.dead = ns.register("dead", 0)

    def entry(self, pid):
        while True:  # repro-lint: disable=TMF101  intentional server loop
            yield self.x.read()

    def exit(self, pid):
        while True:  # repro-lint: disable=TMF101  released out of band
            value = yield self.dead.read()
            if value == 1:
                break
