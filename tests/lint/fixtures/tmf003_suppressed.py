"""TMF003 violations silenced (e.g. documented per-process handles)."""

HISTORY = []

_last_winner = None


class LeakyLock:
    def entry(self, pid, seen=[]):  # repro-lint: disable=TMF003
        value = yield self.x.read()
        self.round = pid  # repro-lint: disable=TMF003
        HISTORY.append(pid)  # repro-lint: disable=TMF003
        self.table[pid] = value  # repro-lint: disable=TMF003

    def exit(self, pid):
        global _last_winner  # repro-lint: disable=TMF003
        _last_winner = pid
        yield self.x.write(None)
