# repro-lint: registers-only  (fixture)
# repro-lint: messages-only  (fixture: conflicting claim)
# repro-lint: disable-file=TMF002
"""TMF002 substrate conflict silenced file-wide."""


class TornLock:
    def entry(self, pid):
        yield self.flag.read()
