"""Seeded TMF006 violations: single-writer registers written by others."""


class CrossWriterLock:
    def __init__(self, ns):
        self.flags = ns.array("flags", False)  # repro-lint: single-writer
        self.owner = ns.register("owner", 0)  # repro-lint: single-writer

    def entry(self, pid):
        yield self.flags[pid].write(True)  # ok: own cell
        yield self.flags[0].write(False)  # line 11: someone else's cell
        yield self.owner.write(pid)  # line 12: writer body #1

    def exit(self, pid):
        yield self.owner.write(0)  # line 15: writer body #2
        yield self.flags[pid].write(False)  # ok: own cell
