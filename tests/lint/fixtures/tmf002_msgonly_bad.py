# repro-lint: messages-only  (fixture: claims the network substrate)
"""Seeded TMF002 violations: register machinery in a messages-only module."""

from repro.sim.registers import Register  # line 4: banned import

from repro.sim import ops


def replica(pid, ns):
    cell = ns.register("cell", 0)  # line 10: register creation
    yield ops.send(0, ("ready", pid))
    yield ops.fetch_and_add(cell, 1)  # line 12: RMW reference
