# repro-lint: registers-only  (fixture)
# repro-lint: messages-only  (fixture: line 2 — a module has one substrate)
"""Seeded TMF002 violation: both substrate directives at once."""


class TornLock:
    def entry(self, pid):
        yield self.flag.read()
