"""TMF102 violations silenced for the whole file (perf hints only)."""

# repro-lint: failure-tolerant
# repro-lint: disable-file=TMF102

DELTA = 1.0


def entry(pid) -> "Program":
    bound = DELTA * 2
    margin = bound + 0.5
    if margin > 1.0:
        yield ops.delay(bound)
    yield ops.local_work(1)
