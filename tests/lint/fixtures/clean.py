"""A fully model-conformant program exercising every accepted idiom."""


class ConformantLock:
    def __init__(self, ns, delta):
        self.delta = float(delta)
        self.x = ns.register("x", None)
        self.b = ns.array("b", False)  # repro-lint: single-writer

    def entry(self, pid):
        yield self.b[pid].write(True)
        while True:
            value = yield self.x.read()
            if value is None:
                break
        yield self.x.write(pid)
        yield ops.delay(self.delta)
        op = self.x.read()  # op bound to a local first
        value = yield op
        yield (self.x.read() if value == pid else self.b[pid].read())
        yield ops.label("cs_enter", pid)

    def exit(self, pid) -> "Program":
        # Delegation-only generators carry the Program annotation — the
        # repo-wide convention — which is how the analyzer classifies
        # them (there is no op yield to recognize).
        yield from self.unlock(pid)
        return pid

    def unlock(self, pid):
        yield self.x.write(None)
        yield self.b[pid].write(False)
