"""Seeded TMF004 violations: wall-clock and entropy inside a program."""

import random
import time
from os import urandom


class FlakyConsensus:
    def propose(self, pid, value):
        yield self.x[pid].write(value)
        if random.random() < 0.5:  # line 11: entropy
            yield self.x[pid].write(time.time())  # line 12: wall clock
        salt = urandom(4)  # line 13: os entropy via from-import
        return salt
