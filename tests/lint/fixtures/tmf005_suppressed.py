"""TMF005 violations silenced line by line."""


class HardwiredLock:
    def entry(self, pid):
        yield self.x.write(pid)
        yield delay(1.5)  # repro-lint: disable=TMF005
        yield ops.delay(0)  # repro-lint: disable=TMF005
        value = yield self.x.read()
        if value != pid:
            yield Delay(-2)  # repro-lint: disable=TMF005
