"""Seeded TMF003 violations: shared mutable state bypassing the registers."""

HISTORY = []

_last_winner = None


class LeakyLock:
    def entry(self, pid, seen=[]):  # line 9: mutable default
        value = yield self.x.read()
        self.round = pid  # line 11: instance attribute assignment
        HISTORY.append(pid)  # line 12: mutating a module global
        self.table[pid] = value  # line 13: subscript write into self state

    def exit(self, pid):
        global _last_winner  # line 16: global declaration
        _last_winner = pid
        yield self.x.write(None)
