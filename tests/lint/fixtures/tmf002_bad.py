# repro-lint: registers-only  (fixture: claims the paper's model)
"""Seeded TMF002 violations: RMW primitives in a registers-only module."""

from repro.sim.ops import fetch_and_add  # line 4: banned import


class SneakyLock:
    def entry(self, pid):
        ticket = yield fetch_and_add(self.next_ticket, 1)  # line 9
        yield self.slots[ticket].write(pid)

    def propose(self, pid, value):
        ok = yield ops.compare_and_swap(self.cell, None, value)  # line 13
        return ok
