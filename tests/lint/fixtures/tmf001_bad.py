"""Seeded TMF001 violations: a program yielding non-op values.

Never imported — the linter reads source only.
"""


class BrokenLock:
    def entry(self, pid):
        value = yield self.x.read()  # ok: recognized op idiom
        if value is None:
            yield  # line 11: bare yield
        yield 42  # line 12: non-op constant
        yield [self.x.read()]  # line 13: op wrapped in a list is not an op

    def exit(self, pid) -> "Program":
        # Classified via the annotation even though no yield is an op.
        yield pid  # line 17: non-op name
