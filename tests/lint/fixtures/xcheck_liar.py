"""A module whose static story is a lie (for the xcheck contradiction test).

The program below only ever *reads* ``x``; the paired dynamic target in
``test_flow_xcheck.py`` runs a program that also **writes** a register
with the same leaf under the checked namespace.  The static access set
of this file therefore cannot explain the observed write — exactly the
contradiction xcheck exists to catch.
"""


class LiarLock:
    def __init__(self, ns):
        self.x = ns.register("x", 0)

    def entry(self, pid) -> "Program":
        value = yield self.x.read()
        if value:
            yield ops.local_work(1)
