"""TMF006 violations silenced for the whole file."""

# repro-lint: disable-file=TMF006


class CrossWriterLock:
    def __init__(self, ns):
        self.flags = ns.array("flags", False)  # repro-lint: single-writer
        self.owner = ns.register("owner", 0)  # repro-lint: single-writer

    def entry(self, pid):
        yield self.flags[pid].write(True)
        yield self.flags[0].write(False)
        yield self.owner.write(pid)

    def exit(self, pid):
        yield self.owner.write(0)
        yield self.flags[pid].write(False)
