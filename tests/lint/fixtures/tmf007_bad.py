"""Seeded TMF007 violations: dead code after return in generators."""


class ForgetfulLock:
    def entry(self, pid):
        while True:
            value = yield self.x.read()
            if value is None:
                return
            continue
            yield self.x.write(pid)  # line 11: after continue

    def exit(self, pid):
        yield self.x.write(None)
        return
        yield self.done[pid].write(True)  # line 16: the paper's exit label, lost
