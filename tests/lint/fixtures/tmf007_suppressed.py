"""TMF007 violations silenced line by line."""


class ForgetfulLock:
    def entry(self, pid):
        while True:
            value = yield self.x.read()
            if value is None:
                return
            continue
            yield self.x.write(pid)  # repro-lint: disable=TMF007

    def exit(self, pid):
        yield self.x.write(None)
        return
        yield self.done[pid].write(True)  # repro-lint: disable=TMF007
