"""Seeded TMF104 violations: single-writer broken through `yield from`."""


def mark(slot, i) -> "Program":
    yield slot[i].write(True)


def bump(reg) -> "Program":
    yield reg.write(1)


class DelegatingLock:
    def __init__(self, ns):
        self.flags = ns.array("flags", False)  # repro-lint: single-writer
        self.owner = ns.register("owner", 0)  # repro-lint: single-writer

    def entry(self, pid) -> "Program":
        yield from mark(self.flags, pid)  # ok: own cell via helper
        yield from mark(self.flags, 1 - pid)  # line 19: foreign cell
        yield from bump(self.owner)  # line 20: writer root #1

    def exit(self, pid) -> "Program":
        yield from bump(self.owner)  # line 23: writer root #2
