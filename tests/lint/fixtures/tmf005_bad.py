"""Seeded TMF005 violations: hard-wired delay bounds."""


class HardwiredLock:
    def entry(self, pid):
        yield self.x.write(pid)
        yield delay(1.5)  # line 7: literal bound
        yield ops.delay(0)  # line 8: literal zero
        value = yield self.x.read()
        if value != pid:
            yield Delay(-2)  # line 11: literal via unary minus
