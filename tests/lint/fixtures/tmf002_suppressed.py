# repro-lint: registers-only  (fixture)
"""TMF002 violations silenced line by line."""

from repro.sim.ops import fetch_and_add  # repro-lint: disable=TMF002


class SneakyLock:
    def entry(self, pid):
        ticket = yield fetch_and_add(self.next_ticket, 1)  # repro-lint: disable=TMF002
        yield self.slots[ticket].write(pid)

    def propose(self, pid, value):
        ok = yield ops.compare_and_swap(self.cell, None, value)  # repro-lint: disable=TMF002
        return ok
