"""Seeded TMF102 violations: Δ-derived control flow in tolerant code."""

# repro-lint: failure-tolerant

DELTA = 1.0


def entry(pid) -> "Program":
    bound = DELTA * 2
    margin = bound + 0.5
    if margin > 1.0:  # line 11: tainted branch
        yield ops.delay(bound)  # line 12: tainted delay duration
    yield ops.local_work(1)
