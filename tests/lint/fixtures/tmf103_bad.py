"""Seeded TMF103 violations: sub-majority quorum thresholds."""

# repro-lint: messages-only
# repro-lint: quorum-n=5


class HalfQuorum:
    def __init__(self, replicas):
        self.majority = replicas // 2  # line 9: bare floor-half

    def query(self, pid) -> "Program":
        acks = {}
        while len(acks) < 2:  # line 13: 2 replies < majority(5) = 3
            src, message = yield ops.recv()
            acks[src] = message
        while len(acks) < self.replicas // 2:  # line 16: inline floor-half
            src, message = yield ops.recv()
            acks[src] = message
