"""TMF104 violations silenced for the whole file."""

# repro-lint: disable-file=TMF104


def mark(slot, i) -> "Program":
    yield slot[i].write(True)


def bump(reg) -> "Program":
    yield reg.write(1)


class DelegatingLock:
    def __init__(self, ns):
        self.flags = ns.array("flags", False)  # repro-lint: single-writer
        self.owner = ns.register("owner", 0)  # repro-lint: single-writer

    def entry(self, pid) -> "Program":
        yield from mark(self.flags, pid)
        yield from mark(self.flags, 1 - pid)
        yield from bump(self.owner)

    def exit(self, pid) -> "Program":
        yield from bump(self.owner)
