# repro-lint: registers-only  (fixture: shared-memory module caught networking)
"""TMF002 registers-only message violations silenced line by line."""

from repro.sim.ops import send  # repro-lint: disable=TMF002

from repro.sim import ops


def entry(pid):
    yield ops.broadcast(("hello", pid))  # repro-lint: disable=TMF002
    yield send(0, "direct")  # repro-lint: disable=TMF002
    yield ops.Recv()  # repro-lint: disable=TMF002
