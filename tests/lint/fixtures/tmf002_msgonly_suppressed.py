# repro-lint: messages-only  (fixture: claims the network substrate)
"""TMF002 messages-only violations silenced line by line."""

from repro.sim.registers import Register  # repro-lint: disable=TMF002

from repro.sim import ops


def replica(pid, ns):
    cell = ns.register("cell", 0)  # repro-lint: disable=TMF002
    yield ops.send(0, ("ready", pid))
    yield ops.fetch_and_add(cell, 1)  # repro-lint: disable=TMF002
