# repro-lint: messages-only  (fixture)
"""Seeded TMF006 violation: dangling single-writer annotation."""

# repro-lint: single-writer — line 4: no registers exist to protect here

from repro.sim import ops


def relay(pid):
    payload = yield ops.recv()
    yield ops.send(0, payload)
