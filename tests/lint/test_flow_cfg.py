"""CFG construction: node/edge shapes, loop anatomy, yield classification."""

from __future__ import annotations

import ast

import pytest

from repro.lint.context import build_context
from repro.lint.flow import build_cfg
from repro.lint.flow import cfg as cfg_mod


def cfg_for(source: str, name: str = "entry"):
    ctx = build_context("<test>", source)
    for program in ctx.programs:
        if program.name == name:
            return build_cfg(program)
    raise AssertionError(f"no program named {name}")


def kinds(cfg):
    return [op.kind for op in cfg.op_sites()]


def test_straight_line_ops_in_order():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    yield reg.read()\n"
        "    yield reg.write(1)\n"
        "    yield ops.delay(0.5)\n"
        "    yield ops.local_work(1)\n"
        "    yield ops.label('CS')\n"
    )
    assert kinds(cfg) == ["read", "write", "delay", "local", "label"]


def test_read_binds_local_and_register_handle():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    value = yield self.x.read()\n"
    )
    (site,) = cfg.op_sites()
    assert site.kind == cfg_mod.OP_READ
    assert site.bound_to == "value"
    assert ast.unparse(site.register) == "self.x"


def test_array_cell_handle_and_index():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    yield self.b[pid].write(True)\n"
    )
    (site,) = cfg.op_sites()
    assert site.kind == cfg_mod.OP_WRITE
    assert ast.unparse(site.index) == "pid"


def test_while_true_has_no_fall_through():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    while True:\n"
        "        yield reg.read()\n"
        "    yield reg.write(1)\n"  # unreachable
    )
    assert kinds(cfg) == ["read"]  # the write is not reachable
    assert sorted(kinds_all(cfg)) == ["read", "write"]


def kinds_all(cfg):
    return [op.kind for op in cfg.op_sites(reachable_only=False)]


def test_loop_info_records_guarded_break():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    while True:\n"
        "        value = yield reg.read()\n"
        "        if value == 0:\n"
        "            break\n"
    )
    (info,) = cfg.loops
    assert info.has_break and not info.has_return
    assert not info.test_falsifiable
    assert info.has_exit
    (chain,) = info.exit_guards
    assert [ast.unparse(c) for c in chain] == ["value == 0"]


def test_loop_info_no_exit():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    while True:\n"
        "        yield reg.read()\n"
    )
    (info,) = cfg.loops
    assert not info.has_exit


def test_for_loop_always_has_exit():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    for _ in range(3):\n"
        "        yield reg.read()\n"
    )
    (info,) = cfg.loops
    assert info.is_for and info.has_exit


def test_return_inside_loop_is_an_exit():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    while True:\n"
        "        value = yield reg.read()\n"
        "        if value:\n"
        "            return\n"
    )
    (info,) = cfg.loops
    assert info.has_return and info.has_exit


def test_conditional_yield_produces_two_sites():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    yield a.read() if fast else b.read()\n"
    )
    sites = cfg.op_sites()
    assert [s.kind for s in sites] == ["read", "read"]
    assert {ast.unparse(s.register) for s in sites} == {"a", "b"}


def test_yield_from_call_site():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    yield from helper(self.b, pid)\n"
    )
    (site,) = cfg.op_sites()
    assert site.kind == cfg_mod.OP_DELEGATE
    assert site.call is not None
    assert ast.unparse(site.register) == "helper"


def test_try_body_links_to_handlers():
    cfg = cfg_for(
        "def entry(pid) -> 'Program':\n"
        "    try:\n"
        "        yield reg.read()\n"
        "    except TimeoutError:\n"
        "        yield reg.write(0)\n"
    )
    assert sorted(kinds(cfg)) == ["read", "write"]


def test_message_ops_classified():
    cfg = cfg_for(
        "def query(pid) -> 'Program':\n"
        "    yield ops.broadcast('m')\n"
        "    got = yield ops.recv()\n"
        "    yield ops.send(1, 'ack')\n",
        name="query",
    )
    assert kinds(cfg) == ["broadcast", "recv", "send"]


def test_nested_scope_yields_belong_to_inner_program():
    source = (
        "def entry(pid) -> 'Program':\n"
        "    def inner():\n"
        "        yield reg.write(1)\n"
        "    yield reg.read()\n"
    )
    assert kinds(cfg_for(source)) == ["read"]
    assert kinds(cfg_for(source, name="inner")) == ["write"]


def test_node_count_is_deterministic():
    source = (
        "def entry(pid) -> 'Program':\n"
        "    while True:\n"
        "        value = yield reg.read()\n"
        "        if value:\n"
        "            break\n"
    )
    assert len(cfg_for(source)) == len(cfg_for(source))
