"""Smoke tests for the networked experiment drivers (E1N, E8N)."""

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    _experiment_order,
    run_e1_net,
    run_e8_net,
)


class TestE1N:
    def test_networked_consensus_decides_within_the_bound(self):
        table = run_e1_net(ns=(2,), seeds=(0,))
        assert len(table.rows) == 1
        row = table.rows[0]
        # Columns: n, Δ_net, worst, mean, messages, rtts, within 15Δ_net.
        assert row[0] == 2
        assert row[2] <= 15.0
        assert row[-1] is True
        assert row[4] > 0 and row[5] > 0


class TestE8N:
    def test_lock_service_survives_every_fault_plan(self):
        table = run_e8_net(n=2, sessions=1)
        assert len(table.rows) == 3  # none / delay-spike / partition
        for row in table.rows:
            # Columns: plan, exclusion held, CS entries, after window, converged.
            assert row[1] is True
            assert row[2] == 2  # n * sessions
            assert row[-1] is True


class TestRegistry:
    def test_networked_drivers_are_registered(self):
        assert "E1N" in ALL_EXPERIMENTS
        assert "E8N" in ALL_EXPERIMENTS

    def test_experiment_order_interleaves_suffixed_ids(self):
        ids = ["E10", "E1N", "E2", "E1", "E8N", "E8"]
        assert sorted(ids, key=_experiment_order) == [
            "E1", "E1N", "E2", "E8", "E8N", "E10",
        ]
