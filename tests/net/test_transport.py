"""Tests for the deterministic message transport and its fault plans."""

import math

import pytest

from repro.net import DelaySpike, MessageLoss, NetFaultPlan, Partition, Transport


class TestDelivery:
    def test_fault_free_message_deliverable_by_the_bound(self):
        t = Transport(2, bound=1.0, seed=0)
        t.send(0, 1, "hello", now=0.0)
        assert t.collect(1, now=1.0) == [(0, "hello")]

    def test_delay_respects_min_factor(self):
        # min_factor=0.1 means nothing arrives before 0.1·bound.
        t = Transport(2, bound=1.0, seed=0, min_factor=0.1)
        for i in range(50):
            t.send(0, 1, i, now=0.0)
        assert t.collect(1, now=0.0999) == []
        got = [payload for _, payload in t.collect(1, now=1.0)]
        assert sorted(got) == list(range(50))

    def test_collect_is_by_deadline_not_fifo(self):
        t = Transport(2, bound=1.0, seed=7)
        for i in range(10):
            t.send(0, 1, i, now=0.0)
        early = t.collect(1, now=0.5)
        late = t.collect(1, now=1.0)
        assert len(early) + len(late) == 10
        # Early batch really was deliverable early: collecting again at the
        # same instant yields nothing.
        assert t.collect(1, now=1.0) == []

    def test_per_link_bound_override(self):
        t = Transport(3, bound=1.0, seed=0, link_bounds={(0, 2): 10.0},
                      min_factor=1.0)
        t.send(0, 1, "fast", now=0.0)
        t.send(0, 2, "slow", now=0.0)
        assert t.collect(1, now=1.0) == [(0, "fast")]
        assert t.collect(2, now=1.0) == []
        assert t.collect(2, now=10.0) == [(0, "slow")]
        assert t.link_bound(0, 2) == 10.0
        assert t.link_bound(0, 1) == 1.0

    def test_determinism_same_seed_same_fates(self):
        def drive(seed):
            t = Transport(3, bound=1.0, seed=seed,
                          faults=NetFaultPlan(losses=(MessageLoss(rate=0.5),)))
            for i in range(40):
                t.send(i % 2, 2, i, now=float(i) * 0.1)
            return t.collect(2, now=100.0), t.stats.snapshot()

        assert drive("s") == drive("s")
        # A different seed draws different delays (and loss decisions).
        assert drive("s") != drive("other")


class TestStatsAccounting:
    def test_sent_splits_into_delivered_dropped_in_flight(self):
        plan = NetFaultPlan(losses=(MessageLoss(rate=0.3, end=5.0),))
        t = Transport(2, bound=1.0, seed=1, faults=plan)
        for i in range(30):
            t.send(0, 1, i, now=float(i) * 0.3)
        t.collect(1, now=4.0)
        s = t.stats
        assert s.messages_sent == 30
        assert s.messages_sent == (
            s.messages_delivered + s.messages_dropped + t.in_flight(1)
        )
        assert s.messages_dropped > 0

    def test_snapshot_key_order_is_stable(self):
        t = Transport(2)
        assert list(t.stats.snapshot()) == [
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "quorum_rtts",
        ]


class TestFaultPlans:
    def test_loss_window_only_drops_inside_the_window(self):
        plan = NetFaultPlan(losses=(MessageLoss(rate=1.0, start=2.0, end=4.0),))
        t = Transport(2, bound=1.0, seed=0, faults=plan)
        t.send(0, 1, "before", now=1.0)
        t.send(0, 1, "during", now=3.0)
        t.send(0, 1, "after", now=4.0)  # window is half-open [start, end)
        assert t.stats.messages_dropped == 1
        got = [payload for _, payload in t.collect(1, now=10.0)]
        assert sorted(got) == ["after", "before"]

    def test_loss_pids_restricts_the_affected_links(self):
        loss = MessageLoss(rate=1.0, pids=(2,))
        assert loss.affects(0, 2, 1.0)
        assert loss.affects(2, 1, 1.0)
        assert not loss.affects(0, 1, 1.0)

    def test_partition_severs_cross_group_then_heals(self):
        plan = NetFaultPlan(partitions=(
            Partition(start=0.0, end=5.0, groups=((0, 1), (2,))),
        ))
        t = Transport(3, bound=1.0, seed=0, faults=plan)
        t.send(0, 2, "cross", now=1.0)   # severed
        t.send(0, 1, "intra", now=1.0)   # same group: unaffected
        t.send(0, 2, "healed", now=5.0)  # window closed
        assert t.stats.messages_dropped == 1
        assert t.collect(1, now=10.0) == [(0, "intra")]
        assert t.collect(2, now=10.0) == [(0, "healed")]

    def test_partition_ignores_unlisted_pids(self):
        p = Partition(start=0.0, end=5.0, groups=((0,), (1,)))
        assert p.severs(0, 1, 1.0)
        assert not p.severs(0, 2, 1.0)  # pid 2 is in no group
        assert not p.severs(0, 1, 5.0)  # healed

    def test_delay_spike_pushes_delivery_past_the_bound(self):
        plan = NetFaultPlan(spikes=(
            DelaySpike(start=0.0, end=1.0, stretch=10.0),
        ))
        t = Transport(2, bound=1.0, seed=0, faults=plan, min_factor=1.0)
        t.send(0, 1, "slow", now=0.0)   # delay = 1.0 * 10
        t.send(0, 1, "fast", now=1.0)   # spike over: delay = 1.0
        assert t.collect(1, now=2.0) == [(0, "fast")]
        assert t.collect(1, now=10.0) == [(0, "slow")]
        assert t.stats.messages_dropped == 0  # a spike delays, never drops

    def test_spike_apply_is_stretch_then_extra(self):
        spike = DelaySpike(start=0.0, end=1.0, stretch=3.0, extra=0.5)
        assert spike.apply(2.0) == pytest.approx(6.5)

    def test_last_disruption_end(self):
        assert NetFaultPlan.none().last_disruption_end == 0.0
        plan = NetFaultPlan(
            losses=(MessageLoss(rate=0.1, start=0.0, end=math.inf),),
            spikes=(DelaySpike(start=0.0, end=7.0),),
            partitions=(Partition(start=2.0, end=4.0, groups=((0,), (1,))),),
        )
        # The open-ended loss window is excluded; the spike closes last.
        assert plan.last_disruption_end == 7.0


class TestValidation:
    def test_transport_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Transport(0)
        with pytest.raises(ValueError):
            Transport(2, bound=0.0)
        with pytest.raises(ValueError):
            Transport(2, min_factor=1.5)

    def test_transport_rejects_bad_sends(self):
        t = Transport(2)
        with pytest.raises(ValueError):
            t.send(0, 0, "self", now=0.0)
        with pytest.raises(ValueError):
            t.send(0, 9, "nowhere", now=0.0)

    def test_peers_excludes_self(self):
        t = Transport(4)
        assert t.peers(2) == (0, 1, 3)

    def test_fault_dataclass_validation(self):
        with pytest.raises(ValueError):
            MessageLoss(rate=1.5)
        with pytest.raises(ValueError):
            MessageLoss(rate=0.1, start=3.0, end=3.0)
        with pytest.raises(ValueError):
            DelaySpike(start=0.0, end=1.0, stretch=0.5)
        with pytest.raises(ValueError):
            DelaySpike(start=0.0, end=1.0, extra=-1.0)
        with pytest.raises(ValueError):
            DelaySpike(start=2.0, end=1.0)
        with pytest.raises(ValueError):
            Partition(start=0.0, end=1.0, groups=((0, 1), (1, 2)))
