"""Tests for the Δ ↔ delivery-bound resilience bridge."""

import math

import pytest

from repro.net import (
    DelaySpike,
    MessageLoss,
    NetFaultPlan,
    Partition,
    QuorumSystem,
    bound_for_delta,
    convergence_start,
    default_costs,
    delta_net,
    emulated_op_bound,
)
from repro.net.resilience import (
    POLL_FACTOR,
    RECV_COST_FACTOR,
    SEND_COST_FACTOR,
)
from repro.sim.failures import CrashSchedule


class TestEmulatedOpBound:
    def test_scales_linearly_with_the_bound(self):
        for clients in (1, 2, 5):
            one = emulated_op_bound(1.0, clients=clients)
            assert emulated_op_bound(3.0, clients=clients) == pytest.approx(3 * one)

    def test_grows_with_contention(self):
        # More clients -> longer replica service bursts -> larger Δ_net.
        bounds = [emulated_op_bound(1.0, clients=c) for c in range(1, 6)]
        assert bounds == sorted(bounds)
        assert bounds[0] < bounds[-1]

    def test_closed_form_under_default_costs(self):
        # phase = send + bound + wake + clients·send + bound + wake,
        # wake = clients·send + poll + recv, Δ_net = 2·phase.
        bound, clients = 1.0, 3
        send = bound * SEND_COST_FACTOR
        recv = bound * RECV_COST_FACTOR
        poll = bound * POLL_FACTOR
        wake = clients * send + poll + recv
        phase = send + bound + wake + clients * send + bound + wake
        assert emulated_op_bound(bound, clients=clients) == pytest.approx(2 * phase)

    def test_explicit_costs_override_the_factors(self):
        base = emulated_op_bound(1.0, clients=2)
        bigger = emulated_op_bound(1.0, clients=2, poll=2.0)
        assert bigger > base

    def test_bound_for_delta_is_the_inverse(self):
        for clients in (1, 2, 4):
            for delta in (1.0, 6.2, 100.0):
                bound = bound_for_delta(delta, clients=clients)
                assert emulated_op_bound(bound, clients=clients) == pytest.approx(delta)

    def test_delta_net_matches_a_built_system(self):
        system = QuorumSystem(clients=3, bound=2.0)
        assert delta_net(system) == pytest.approx(system.delta)
        assert system.delta == pytest.approx(emulated_op_bound(2.0, clients=3))

    def test_validation(self):
        with pytest.raises(ValueError):
            emulated_op_bound(0.0)
        with pytest.raises(ValueError):
            emulated_op_bound(1.0, clients=0)
        with pytest.raises(ValueError):
            bound_for_delta(0.0)
        with pytest.raises(ValueError):
            default_costs(-1.0)


class TestConvergenceStart:
    def test_quiet_network_starts_at_zero(self):
        assert convergence_start(NetFaultPlan.none()) == 0.0

    def test_last_window_close_wins(self):
        plan = NetFaultPlan(
            spikes=(DelaySpike(start=0.0, end=4.0),),
            partitions=(Partition(start=1.0, end=9.0, groups=((0,), (1,))),),
        )
        assert convergence_start(plan) == 9.0

    def test_open_ended_windows_do_not_count(self):
        plan = NetFaultPlan(losses=(MessageLoss(rate=0.5, end=math.inf),))
        assert convergence_start(plan) == 0.0

    def test_late_crash_moves_the_clock(self):
        plan = NetFaultPlan(spikes=(DelaySpike(start=0.0, end=4.0),))
        crashes = CrashSchedule(at_time={2: 11.0})
        assert convergence_start(plan, crashes, pids=(0, 1, 2)) == 11.0
        # An uncrashed pid contributes nothing.
        assert convergence_start(plan, crashes, pids=(0, 1)) == 4.0
