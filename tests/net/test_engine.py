"""Tests for the network-aware engine (message ops on the event loop)."""

import pytest

from repro.net import NetEngine, Transport
from repro.sim import ConstantTiming, Engine, RunStatus, ops
from repro.sim.engine import SimulationError
from repro.sim.failures import CrashSchedule
from repro.sim.instrument import EngineProbe, probe_scope
from repro.sim.trace import EventKind


def build(n=2, bound=1.0, seed=0, **kwargs):
    transport = Transport(n, bound=bound, seed=seed)
    engine = NetEngine(
        delta=1.0, timing=ConstantTiming(0.05), transport=transport, **kwargs
    )
    return engine, transport


def pollster(expect):
    got = []
    while len(got) < expect:
        got.extend((yield ops.recv()))
        if len(got) < expect:
            yield ops.delay(0.2)
    return got


class TestMessageOps:
    def test_send_recv_roundtrip(self):
        engine, _ = build()

        def sender():
            yield ops.send(1, "ping")
            yield ops.send(1, "pong")

        engine.spawn(sender(), pid=0)
        engine.spawn(pollster(2), pid=1)
        result = engine.run()
        assert result.status is RunStatus.COMPLETED
        # Raw links are not FIFO (each delivery draws its own delay) —
        # ordering is the quorum/mp layers' job; the fabric promises
        # delivery, not order.
        assert sorted(result.returns[1]) == [(0, "ping"), (0, "pong")]

    def test_broadcast_defaults_to_every_peer(self):
        engine, _ = build(n=4)

        def caster():
            yield ops.broadcast("hello")

        engine.spawn(caster(), pid=0)
        for pid in range(1, 4):
            engine.spawn(pollster(1), pid=pid)
        result = engine.run()
        for pid in range(1, 4):
            assert result.returns[pid] == [(0, "hello")]

    def test_broadcast_with_explicit_dests(self):
        engine, transport = build(n=4)

        def caster():
            yield ops.broadcast("only-some", dests=(1, 3))
            yield ops.delay(5.0)

        engine.spawn(caster(), pid=0)
        engine.spawn(pollster(1), pid=1)
        engine.spawn(pollster(1), pid=3)

        def bystander():
            yield ops.delay(3.0)
            return (yield ops.recv())

        engine.spawn(bystander(), pid=2)
        result = engine.run()
        assert result.returns[1] == [(0, "only-some")]
        assert result.returns[3] == [(0, "only-some")]
        assert result.returns[2] == []
        assert transport.stats.messages_sent == 2

    def test_plain_engine_rejects_message_ops(self):
        engine = Engine(delta=1.0, timing=ConstantTiming(0.1))

        def talker():
            yield ops.send(1, "no fabric here")

        engine.spawn(talker(), pid=0)
        with pytest.raises(SimulationError):
            engine.run()

    def test_send_and_recv_cost_local_time(self):
        engine, _ = build()

        def sender():
            yield ops.send(1, "x")

        def receiver():
            yield ops.recv()

        engine.spawn(sender(), pid=0)
        engine.spawn(receiver(), pid=1)
        result = engine.run()
        sends = [e for e in result.trace if e.kind == EventKind.SEND]
        recvs = [e for e in result.trace if e.kind == EventKind.RECV]
        assert len(sends) == 1 and len(recvs) == 1
        assert sends[0].completed - sends[0].issued == pytest.approx(engine.send_cost)
        assert recvs[0].completed - recvs[0].issued == pytest.approx(engine.recv_cost)

    def test_zero_costs_are_rejected(self):
        transport = Transport(2)
        with pytest.raises(ValueError):
            NetEngine(
                delta=1.0,
                timing=ConstantTiming(0.1),
                transport=transport,
                send_cost=0.0,
            )


class TestCrashes:
    def test_crashed_endpoint_never_collects(self):
        engine, transport = build(crashes=CrashSchedule(at_time={1: 0.01}))

        def sender():
            yield ops.delay(1.0)
            yield ops.send(1, "to the dead")
            yield ops.delay(5.0)

        engine.spawn(sender(), pid=0)
        engine.spawn(pollster(1), pid=1)
        result = engine.run()
        assert 1 in result.crashed_pids
        assert transport.stats.messages_sent == 1
        assert transport.stats.messages_delivered == 0
        assert transport.in_flight(1) == 1  # parked forever, not dropped


class TestProbe:
    def test_transport_stats_merge_into_ambient_probe(self):
        probe = EngineProbe()
        with probe_scope(probe):
            engine, transport = build()

            def sender():
                yield ops.send(1, "counted")

            engine.spawn(sender(), pid=0)
            engine.spawn(pollster(1), pid=1)
            engine.run()
        assert probe.messages_sent == transport.stats.messages_sent == 1
        assert probe.messages_delivered == 1
        assert probe.messages_dropped == 0
