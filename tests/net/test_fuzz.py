"""Fuzzed net schedules checked against the linearizability spec."""

import pytest

from repro.net import NetFuzzReport, fuzz_quorum_register
from repro.net.fuzz import PLAN_KINDS, ScheduleOutcome


class TestCampaign:
    def test_two_rotations_are_linearizable(self):
        report = fuzz_quorum_register(schedules=12, seed="tier1")
        assert report.ok, report.summary()
        assert len(report.outcomes) == 12
        # The rotation covered every plan kind exactly twice.
        assert [row[1] for row in report.by_plan()] == [2] * len(PLAN_KINDS)

    def test_rotation_order_is_round_robin(self):
        report = fuzz_quorum_register(schedules=len(PLAN_KINDS), seed=0)
        assert tuple(o.plan for o in report.outcomes) == PLAN_KINDS

    def test_campaign_is_deterministic(self):
        first = fuzz_quorum_register(schedules=6, seed=42)
        second = fuzz_quorum_register(schedules=6, seed=42)
        assert first.outcomes == second.outcomes

    def test_different_seeds_draw_different_schedules(self):
        a = fuzz_quorum_register(schedules=6, seed=1)
        b = fuzz_quorum_register(schedules=6, seed=2)
        assert a.outcomes != b.outcomes

    def test_schedules_exercise_real_operations(self):
        report = fuzz_quorum_register(schedules=6, seed=7)
        assert sum(o.operations for o in report.outcomes) > 0
        # Client-crash schedules are the ones expected to leave pending
        # invocations; the checker must have explained them (report.ok).
        assert report.ok

    def test_progress_callback_sees_every_outcome(self):
        seen = []
        report = fuzz_quorum_register(schedules=4, seed=0, progress=seen.append)
        assert seen == report.outcomes

    def test_summary_reports_per_plan_rows(self):
        report = fuzz_quorum_register(schedules=6, seed=0)
        text = report.summary()
        assert "0 linearizability violations" in text
        for kind in PLAN_KINDS:
            assert kind in text


class TestReportShape:
    def test_violations_filter(self):
        good = ScheduleOutcome(0, "clean", True, 3, 0, "completed")
        bad = ScheduleOutcome(1, "loss", False, 3, 0, "completed")
        report = NetFuzzReport(seed=0, schedules=2, outcomes=[good, bad])
        assert report.violations == [bad]
        assert not report.ok


@pytest.mark.slow
class TestAcceptanceCampaign:
    def test_thousand_plus_schedules_stay_linearizable(self):
        # The subsystem's acceptance bar: >= 1000 fuzzed schedules,
        # including the crash-minority and delay-spike rotations.
        report = fuzz_quorum_register(schedules=1008, seed="acceptance")
        assert report.ok, report.summary()
        by_plan = dict((kind, ran) for kind, ran, _ in report.by_plan())
        assert by_plan["crash-minority"] == 168
        assert by_plan["delay-spike"] == 168
