"""Tests for the ABD quorum register emulation."""

import pytest

from repro.net import NetFaultPlan, Partition, QuorumSystem
from repro.sim import RunStatus, ops
from repro.sim.failures import CrashSchedule
from repro.sim.registers import Register


class TestReadWrite:
    def test_write_then_read_round_trips(self):
        reg = Register("r", 0)

        def client():
            yield reg.write(41)
            yield reg.write(42)
            value = yield reg.read()
            return value

        system = QuorumSystem(clients=1, replicas=3, seed=0)
        result = system.run([client()])
        assert result.status is RunStatus.COMPLETED
        assert result.returns[0] == 42

    def test_read_of_untouched_register_returns_initial(self):
        reg = Register("fresh", initial="seed-value")

        def client():
            return (yield reg.read())

        system = QuorumSystem(clients=1, replicas=3, seed=0)
        result = system.run([client()])
        assert result.returns[0] == "seed-value"

    def test_write_is_visible_to_another_client(self):
        reg = Register("flag", 0)

        def writer():
            yield reg.write("set")

        def watcher():
            while True:
                value = yield reg.read()
                if value == "set":
                    return value

        system = QuorumSystem(clients=2, replicas=3, seed=1)
        result = system.run([writer(), watcher()])
        assert result.status is RunStatus.COMPLETED
        assert result.returns[1] == "set"

    def test_concurrent_writers_are_totally_ordered(self):
        # Two clients write distinct values; a majority of replicas must
        # agree on a single winner (timestamps break the tie by pid).
        reg = Register("race", None)

        def client(pid):
            yield reg.write(f"from-{pid}")

        system = QuorumSystem(clients=2, replicas=3, seed=2)
        result = system.run([client(0), client(1)])
        assert result.status is RunStatus.COMPLETED
        finals = [store["race"] for store in system.replica_stores.values()
                  if "race" in store]
        winner = max(finals, key=lambda pair: pair[0])
        holders = [f for f in finals if f == winner]
        assert len(holders) >= system.majority

    def test_rmw_ops_are_rejected(self):
        reg = Register("counter", 0)

        def client():
            yield ops.fetch_and_add(reg, 1)

        system = QuorumSystem(clients=1, replicas=3)
        facade = system.emulate_registers(0, client())
        with pytest.raises(TypeError, match="read/write"):
            next(facade)


class TestFacade:
    def test_non_shared_ops_pass_through(self):
        reg = Register("r", 0)

        def client():
            yield ops.label(ops.DECIDED, "payload")
            yield ops.delay(0.5)
            yield ops.local_work(0.1)
            yield reg.write(7)
            return "done"

        system = QuorumSystem(clients=1, replicas=3, seed=0)
        result = system.run([client()])
        assert result.status is RunStatus.COMPLETED
        assert result.returns[0] == "done"
        assert result.trace.decisions()[0][1] == "payload"

    def test_replicas_return_none_and_record_their_stores(self):
        reg = Register("r", 0)

        def client():
            yield reg.write(99)

        system = QuorumSystem(clients=1, replicas=3, seed=0)
        result = system.run([client()])
        # Replica pids return None (a replica is not a decider) ...
        for pid in system.replica_pids:
            assert result.returns[pid] is None
        # ... and the final stores land in replica_stores: a majority
        # holds the write (read-repair-free run: exactly the update set).
        holders = [pid for pid, store in system.replica_stores.items()
                   if store.get("r", (None, None))[1] == 99]
        assert len(holders) >= system.majority

    def test_read_repair_propagates_the_value(self):
        reg = Register("r", 0)

        def writer():
            yield reg.write(5)

        def reader():
            while True:
                value = yield reg.read()
                if value == 5:
                    return value

        system = QuorumSystem(clients=2, replicas=5, seed=3)
        result = system.run([writer(), reader()])
        assert result.status is RunStatus.COMPLETED
        holders = [pid for pid, store in system.replica_stores.items()
                   if store.get("r", (None, None))[1] == 5]
        # Write majority (3) plus the read's write-back majority can cover
        # more replicas than the original write alone.
        assert len(holders) >= system.majority


class TestFailures:
    def test_crash_minority_is_invisible_to_clients(self):
        reg = Register("r", 0)

        def client():
            yield reg.write(1)
            value = yield reg.read()
            return value

        system = QuorumSystem(
            clients=1,
            replicas=3,
            seed=0,
            crashes=CrashSchedule(at_time={1: 0.05}),  # pid 1 = a replica
        )
        result = system.run([client()])
        assert result.status is RunStatus.COMPLETED
        assert result.returns[0] == 1
        assert 1 in result.crashed_pids

    def test_majority_partition_blocks_instead_of_lying(self):
        reg = Register("r", "initial")

        def client():
            yield reg.write("lost?")
            return (yield reg.read())

        # Both non-client replicas unreachable forever: no majority exists,
        # so the write must block until the time limit — never complete
        # with a stale or phantom result.
        system = QuorumSystem(
            clients=1,
            replicas=3,
            seed=0,
            faults=NetFaultPlan(partitions=(
                Partition(start=0.0, end=10_000.0, groups=((0, 1), (2, 3))),
            )),
            max_time=50.0,
        )
        result = system.run([client()])
        assert result.status is RunStatus.TIME_LIMIT
        assert 0 not in result.returns  # the client never finished

    def test_operations_resume_after_the_partition_heals(self):
        reg = Register("r", 0)

        def client():
            yield reg.write("survived")
            return (yield reg.read())

        system = QuorumSystem(
            clients=1,
            replicas=3,
            seed=0,
            faults=NetFaultPlan(partitions=(
                Partition(start=0.0, end=8.0, groups=((0, 1), (2, 3))),
            )),
        )
        result = system.run([client()])
        assert result.status is RunStatus.COMPLETED
        assert result.returns[0] == "survived"


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            QuorumSystem(clients=0)
        with pytest.raises(ValueError):
            QuorumSystem(clients=1, replicas=0)

    def test_majority_formula(self):
        assert QuorumSystem(clients=1, replicas=3).majority == 2
        assert QuorumSystem(clients=1, replicas=4).majority == 3
        assert QuorumSystem(clients=1, replicas=5).majority == 3

    def test_program_count_must_match_clients(self):
        system = QuorumSystem(clients=2)
        with pytest.raises(ValueError):
            system.run([iter(())])

    def test_system_is_single_use(self):
        def client():
            return (yield ops.delay(0.1))

        system = QuorumSystem(clients=1)
        system.run([client()])
        with pytest.raises(RuntimeError, match="already ran"):
            system.run([client()])


class TestFaultToleranceValidation:
    def test_insufficient_replicas_rejected_at_construction(self):
        # The deployment mistake this guards: "3 replicas, tolerate 2
        # crashes" wedges mid-run once a majority is dead.  Fail loudly
        # at construction instead.
        with pytest.raises(ValueError, match=r"2\*f\+1"):
            QuorumSystem(clients=1, replicas=3, fault_tolerance=2)
        with pytest.raises(ValueError, match=r"2\*f\+1"):
            QuorumSystem(clients=1, replicas=4, fault_tolerance=2)

    def test_boundary_replica_counts_accepted(self):
        assert QuorumSystem(clients=1, replicas=3,
                            fault_tolerance=1).fault_tolerance == 1
        assert QuorumSystem(clients=1, replicas=5,
                            fault_tolerance=2).fault_tolerance == 2

    def test_default_tolerance_is_largest_minority(self):
        assert QuorumSystem(clients=1, replicas=3).fault_tolerance == 1
        assert QuorumSystem(clients=1, replicas=4).fault_tolerance == 1
        assert QuorumSystem(clients=1, replicas=7).fault_tolerance == 3

    def test_tolerance_type_and_sign_checked(self):
        with pytest.raises(TypeError):
            QuorumSystem(clients=1, replicas=3, fault_tolerance=True)
        with pytest.raises(ValueError):
            QuorumSystem(clients=1, replicas=3, fault_tolerance=-1)


class TestSubstrateSeam:
    def test_substrate_endpoint_count_must_match(self):
        from repro.net.transport import Transport

        with pytest.raises(ValueError, match="endpoints"):
            QuorumSystem(clients=2, replicas=3,
                         substrate=Transport(4, bound=1.0))

    def test_sim_substrate_round_trips(self):
        from repro.net.transport import Transport

        transport = Transport(4, bound=1.0)
        system = QuorumSystem(clients=1, replicas=3, substrate=transport)
        reg = Register("x", 0)

        def client():
            yield reg.write(9)
            return (yield reg.read())

        result = system.run([client()])
        assert result.status is RunStatus.COMPLETED
        assert result.returns[0] == 9
        assert transport.stats.messages_sent > 0
