"""Tests for the universal construction (Herlihy) over Algorithm 1."""

import pytest

from repro.core.derived import Universal
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
)
from repro.spec import (
    CounterModel,
    QueueModel,
    StackModel,
    check_linearizability,
    history_from_trace,
)


def engine(timing=None, crashes=None, tie=None, max_time=200_000.0):
    return Engine(delta=1.0, timing=timing or ConstantTiming(0.5),
                  crashes=crashes, tie_break=tie, max_time=max_time)


def run_clients(universal, scripts, timing=None, crashes=None, tie=None):
    """scripts: pid -> list of (op_name, args)."""
    eng = engine(timing=timing, crashes=crashes, tie=tie)

    def client(pid, ops_list):
        client_handle = universal.client(pid)
        results = []
        for name, args in ops_list:
            result = yield from client_handle.invoke(name, *args)
            results.append(result)
        return results

    for pid, ops_list in scripts.items():
        eng.spawn(client(pid, ops_list), pid=pid)
    return eng.run()


class TestCounter:
    def test_increments_are_unique_and_dense(self):
        n = 3
        counter = Universal(n=n, delta=1.0, model=CounterModel(), object_id="ctr")
        scripts = {pid: [("increment", ())] * 2 for pid in range(n)}
        res = run_clients(counter, scripts)
        assert res.status is RunStatus.COMPLETED
        observed = sorted(v for results in res.returns.values() for v in results)
        assert observed == list(range(2 * n))

    def test_linearizable_history(self):
        n = 3
        counter = Universal(n=n, delta=1.0, model=CounterModel(), object_id="ctr")
        scripts = {pid: [("increment", ()), ("read", ())] for pid in range(n)}
        res = run_clients(counter, scripts, timing=UniformTiming(0.1, 1.0, seed=2))
        history = history_from_trace(res.trace, obj="ctr")
        assert len(history) == 2 * n
        assert check_linearizability(history, CounterModel()).ok


class TestQueue:
    def test_fifo_behaviour(self):
        queue = Universal(n=2, delta=1.0, model=QueueModel(), object_id="q")
        scripts = {
            0: [("enqueue", (f"a{i}",)) for i in range(3)],
            1: [("dequeue", ())] * 3,
        }
        res = run_clients(queue, scripts)
        assert res.status is RunStatus.COMPLETED
        history = history_from_trace(res.trace, obj="q")
        assert check_linearizability(history, QueueModel()).ok

    def test_producer_order_preserved(self):
        queue = Universal(n=2, delta=1.0, model=QueueModel(), object_id="q")
        scripts = {
            0: [("enqueue", (i,)) for i in range(4)],
            1: [],
        }
        res = run_clients(queue, scripts)
        # Drain sequentially with a fresh run sharing the same memory? Not
        # possible across engines — instead verify via a single consumer
        # appended to the same run:
        queue2 = Universal(n=2, delta=1.0, model=QueueModel(), object_id="q2")
        scripts2 = {
            0: [("enqueue", (i,)) for i in range(4)] + [("dequeue", ())] * 4,
        }
        res2 = run_clients(queue2, scripts2)
        dequeued = res2.returns[0][4:]
        assert dequeued == [0, 1, 2, 3]

    @pytest.mark.parametrize("seed", range(4))
    def test_linearizable_under_jitter(self, seed):
        queue = Universal(n=3, delta=1.0, model=QueueModel(), object_id="q")
        scripts = {
            0: [("enqueue", (1,)), ("enqueue", (2,))],
            1: [("dequeue", ()), ("dequeue", ())],
            2: [("enqueue", (3,)), ("dequeue", ())],
        }
        res = run_clients(queue, scripts, timing=UniformTiming(0.05, 1.0, seed=seed),
                          tie=RandomTieBreak(seed))
        assert res.status is RunStatus.COMPLETED
        history = history_from_trace(res.trace, obj="q")
        assert check_linearizability(history, QueueModel()).ok


class TestStack:
    def test_lifo_behaviour(self):
        stack = Universal(n=1, delta=1.0, model=StackModel(), object_id="s")
        scripts = {0: [("push", (1,)), ("push", (2,)), ("pop", ()), ("pop", ())]}
        res = run_clients(stack, scripts)
        assert res.returns[0][2:] == [2, 1]

    def test_concurrent_linearizable(self):
        stack = Universal(n=2, delta=1.0, model=StackModel(), object_id="s")
        scripts = {
            0: [("push", ("a",)), ("pop", ())],
            1: [("push", ("b",)), ("pop", ())],
        }
        res = run_clients(stack, scripts, timing=UniformTiming(0.1, 0.9, seed=7))
        history = history_from_trace(res.trace, obj="s")
        assert check_linearizability(history, StackModel()).ok


class TestWaitFreedom:
    def test_helping_completes_operations_despite_crashes(self):
        """A crashed process must not block others (Herlihy helping)."""
        n = 3
        counter = Universal(n=n, delta=1.0, model=CounterModel(), object_id="ctr")
        scripts = {pid: [("increment", ())] * 2 for pid in range(n)}
        res = run_clients(
            counter, scripts, crashes=CrashSchedule(after_steps={0: 10})
        )
        assert res.status is RunStatus.COMPLETED
        # Survivors finished all their operations.
        assert set(res.returns) >= {1, 2}
        for pid in (1, 2):
            assert len(res.returns[pid]) == 2

    def test_duplicate_slot_wins_filtered(self):
        """A helped operation may win two slots; results must stay unique."""
        n = 2
        counter = Universal(n=n, delta=1.0, model=CounterModel(), object_id="ctr")
        scripts = {pid: [("increment", ())] * 3 for pid in range(n)}
        res = run_clients(counter, scripts, timing=UniformTiming(0.05, 1.0, seed=9))
        observed = sorted(v for results in res.returns.values() for v in results)
        assert observed == list(range(6))


class TestValidation:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            Universal(n=0, delta=1.0, model=CounterModel())

    def test_client_pid_range(self):
        u = Universal(n=2, delta=1.0, model=CounterModel())
        with pytest.raises(ValueError):
            u.client(5)

    def test_slot_instances_cached(self):
        u = Universal(n=2, delta=1.0, model=CounterModel())
        assert u.slot(0) is u.slot(0)
        assert u.slot(0) is not u.slot(1)
