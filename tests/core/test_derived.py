"""Tests for the derived wait-free objects (election, TAS, renaming,
multivalued consensus, the consensus service)."""

import pytest

from repro.core.derived import ConsensusService, LeaderElection, MultivaluedConsensus, Renaming
from repro.core.derived import TestAndSet as TasObject  # avoid pytest collection
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
    failure_window,
)
from repro.spec import (
    TestAndSetModel,
    check_consensus,
    check_linearizability,
    history_from_trace,
)


def engine(timing=None, delta=1.0, crashes=None, max_time=50_000.0, tie=None):
    return Engine(delta=delta, timing=timing or ConstantTiming(0.5),
                  crashes=crashes, max_time=max_time, tie_break=tie)


class TestMultivaluedConsensus:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_agreement_and_validity(self, n):
        mv = MultivaluedConsensus(n=n, delta=1.0)
        eng = engine()
        values = [f"v{i}" for i in range(n)]
        for pid in range(n):
            eng.spawn(mv.propose(pid, values[pid]), pid=pid)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        decisions = set(res.returns.values())
        assert len(decisions) == 1
        assert decisions.pop() in values

    def test_solo_decides_own_value(self):
        mv = MultivaluedConsensus(n=4, delta=1.0)
        eng = engine()
        eng.spawn(mv.propose(2, "mine"), pid=2)
        res = eng.run()
        assert res.returns == {2: "mine"}

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_under_jitter(self, seed):
        n = 4
        mv = MultivaluedConsensus(n=n, delta=1.0)
        eng = engine(timing=UniformTiming(0.05, 1.0, seed=seed),
                     tie=RandomTieBreak(seed))
        for pid in range(n):
            eng.spawn(mv.propose(pid, 100 + pid), pid=pid)
        res = eng.run()
        assert len(set(res.returns.values())) == 1

    def test_wait_free_under_crashes(self):
        n = 4
        mv = MultivaluedConsensus(n=n, delta=1.0)
        eng = engine(crashes=CrashSchedule(after_steps={0: 3, 1: 9}))
        for pid in range(n):
            eng.spawn(mv.propose(pid, pid * 10), pid=pid)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        survivors = {pid: v for pid, v in res.returns.items()}
        assert set(survivors) == {2, 3}
        assert len(set(survivors.values())) == 1

    def test_safety_under_timing_failures(self):
        n = 3
        mv = MultivaluedConsensus(n=n, delta=1.0)
        timing = FailureWindowTiming(
            ConstantTiming(0.5), [failure_window(0.0, 8.0, stretch=15.0, pids=[0])]
        )
        eng = engine(timing=timing)
        for pid in range(n):
            eng.spawn(mv.propose(pid, pid), pid=pid)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        assert len(set(res.returns.values())) == 1

    def test_rejects_none_and_bad_pid(self):
        mv = MultivaluedConsensus(n=2, delta=1.0)
        with pytest.raises(ValueError):
            list(mv.propose(0, None))
        with pytest.raises(ValueError):
            list(mv.propose(5, 1))


class TestLeaderElection:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_unique_leader_among_candidates(self, n):
        el = LeaderElection(n=n, delta=1.0)
        eng = engine()
        for pid in range(n):
            eng.spawn(el.elect(pid), pid=pid)
        res = eng.run()
        leaders = set(res.returns.values())
        assert len(leaders) == 1
        assert leaders.pop() in range(n)

    def test_election_satisfies_consensus_spec(self):
        n = 3
        el = LeaderElection(n=n, delta=1.0)
        eng = engine()
        for pid in range(n):
            eng.spawn(el.elect(pid), pid=pid)
        res = eng.run()
        v = check_consensus(res, {pid: pid for pid in range(n)})
        assert v.ok

    def test_sole_candidate_wins(self):
        el = LeaderElection(n=5, delta=1.0)
        eng = engine()
        eng.spawn(el.elect(3), pid=3)
        res = eng.run()
        assert res.returns == {3: 3}

    def test_crashed_candidates_do_not_block(self):
        n = 4
        el = LeaderElection(n=n, delta=1.0)
        eng = engine(crashes=CrashSchedule(after_steps={1: 2, 2: 5}))
        for pid in range(n):
            eng.spawn(el.elect(pid), pid=pid)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        assert len(set(res.returns.values())) == 1


class TestTestAndSet:
    @pytest.mark.parametrize("n", [1, 2, 3, 6])
    def test_exactly_one_winner(self, n):
        tas = TasObject(n=n, delta=1.0)
        eng = engine()
        for pid in range(n):
            eng.spawn(tas.test_and_set(pid), pid=pid)
        res = eng.run()
        wins = [pid for pid, v in res.returns.items() if v == 0]
        losses = [pid for pid, v in res.returns.items() if v == 1]
        assert len(wins) == 1
        assert len(losses) == n - 1

    def test_history_linearizable(self):
        n = 4
        tas = TasObject(n=n, delta=1.0)
        eng = engine(timing=UniformTiming(0.1, 1.0, seed=4))
        for pid in range(n):
            eng.spawn(tas.test_and_set(pid), pid=pid)
        res = eng.run()
        history = history_from_trace(res.trace, obj="tas")
        assert len(history) == n
        assert check_linearizability(history, TestAndSetModel()).ok

    def test_solo_caller_wins(self):
        tas = TasObject(n=3, delta=1.0)
        eng = engine()
        eng.spawn(tas.test_and_set(1), pid=1)
        assert eng.run().returns == {1: 0}

    def test_winner_decided_despite_crashes(self):
        n = 4
        tas = TasObject(n=n, delta=1.0)
        eng = engine(crashes=CrashSchedule(after_steps={0: 4}))
        for pid in range(n):
            eng.spawn(tas.test_and_set(pid), pid=pid)
        res = eng.run()
        # The crashed pid may or may not be the winner, but survivors see
        # at most one 0 among themselves.
        wins = [pid for pid, v in res.returns.items() if v == 0]
        assert len(wins) <= 1


class TestRenaming:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_names_distinct_and_tight(self, n):
        rn = Renaming(n=n, delta=1.0)
        eng = engine()
        for pid in range(n):
            eng.spawn(rn.acquire(pid), pid=pid)
        res = eng.run()
        names = sorted(res.returns.values())
        assert names == list(range(1, n + 1))

    @pytest.mark.parametrize("seed", range(4))
    def test_distinct_under_jitter(self, seed):
        n = 4
        rn = Renaming(n=n, delta=1.0)
        eng = engine(timing=UniformTiming(0.05, 1.0, seed=seed),
                     tie=RandomTieBreak(seed))
        for pid in range(n):
            eng.spawn(rn.acquire(pid), pid=pid)
        res = eng.run()
        names = list(res.returns.values())
        assert len(names) == len(set(names))
        assert all(1 <= name <= n for name in names)

    def test_solo_gets_name_one(self):
        rn = Renaming(n=5, delta=1.0)
        eng = engine()
        eng.spawn(rn.acquire(4), pid=4)
        assert eng.run().returns == {4: 1}

    def test_crash_does_not_duplicate_names(self):
        n = 5
        rn = Renaming(n=n, delta=1.0)
        eng = engine(crashes=CrashSchedule(after_steps={2: 6}))
        for pid in range(n):
            eng.spawn(rn.acquire(pid), pid=pid)
        res = eng.run()
        names = list(res.returns.values())
        assert len(names) == len(set(names))


class TestConsensusService:
    def test_independent_instances(self):
        svc = ConsensusService(delta=1.0)
        eng = engine()

        def client(pid, key, value):
            decision = yield from svc.propose(key, pid, value)
            return (key, decision)

        eng.spawn(client(0, "epoch1", 0), pid=0)
        eng.spawn(client(1, "epoch2", 1), pid=1)
        res = eng.run()
        assert res.returns[0] == ("epoch1", 0)
        assert res.returns[1] == ("epoch2", 1)

    def test_same_instance_agrees(self):
        svc = ConsensusService(delta=1.0)
        eng = engine()

        def client(pid, value):
            decision = yield from svc.propose("shared", pid, value)
            return decision

        eng.spawn(client(0, 0), pid=0)
        eng.spawn(client(1, 1), pid=1)
        res = eng.run()
        assert len(set(res.returns.values())) == 1

    def test_multivalued_mode(self):
        svc = ConsensusService(delta=1.0, n=3)
        eng = engine()

        def client(pid):
            decision = yield from svc.propose("leader", pid, f"node-{pid}")
            return decision

        for pid in range(3):
            eng.spawn(client(pid), pid=pid)
        res = eng.run()
        assert len(set(res.returns.values())) == 1

    def test_instance_registry_reuse(self):
        svc = ConsensusService(delta=1.0)
        a = svc.instance("k")
        assert svc.instance("k") is a
        assert svc.instance("other") is not a

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            ConsensusService(delta=0)
