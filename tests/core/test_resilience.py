"""Tests for the machine-checkable resilience definition (§1.3)."""

import pytest

from repro.core.resilience import check_consensus_resilience, check_resilience
from repro.sim import ops
from repro.sim.trace import EventKind, Trace, TraceEvent


def lbl(seq, pid, kind, t, value=None):
    return TraceEvent(seq=seq, pid=pid, kind=EventKind.LABEL, issued=t,
                      completed=t, label=kind, value=value)


def step(seq, pid, t0, t1, exceeded=False):
    return TraceEvent(seq=seq, pid=pid, kind=EventKind.READ, issued=t0,
                      completed=t1, register="r", value=0,
                      exceeded_delta=exceeded)


def session(seq0, pid, es, ce, cx, xd):
    return [
        lbl(seq0, pid, ops.ENTRY_START, es),
        lbl(seq0 + 1, pid, ops.CS_ENTER, ce),
        lbl(seq0 + 2, pid, ops.CS_EXIT, cx),
        lbl(seq0 + 3, pid, ops.EXIT_DONE, xd),
    ]


def build(events):
    tr = Trace(delta=1.0)
    for e in sorted(events, key=lambda e: e.completed):
        tr.append(e)
    return tr


class TestMutexResilience:
    def test_clean_efficient_run_is_resilient(self):
        tr = build(session(0, 0, 0.0, 0.5, 1.0, 1.2))
        report = check_resilience(tr, psi_deltas=2.0)
        assert report.resilient
        assert report.convergence_time == 0.0
        assert report.efficiency_value <= 2.0

    def test_efficiency_violation_detected(self):
        # 5-time-unit wait with psi = 2 deltas and no failures anywhere.
        tr = build(session(0, 0, 0.0, 5.0, 6.0, 6.2))
        report = check_resilience(tr, psi_deltas=2.0)
        assert not report.efficiency_ok
        assert not report.resilient
        assert any("efficiency" in v for v in report.violations)

    def test_convergence_time_measured_after_failures(self):
        events = [
            step(0, 0, 1.0, 4.0, exceeded=True),  # failure ends at 4.0
        ]
        # A long unserved wait 4.0 -> 9.0 (convergence work), then clean.
        events += session(1, 0, 4.0, 9.0, 9.5, 9.7)
        events += session(5, 0, 10.0, 10.5, 11.0, 11.2)
        tr = build(events)
        report = check_resilience(tr, psi_deltas=2.0)
        assert report.safety_ok
        assert report.last_failure == 4.0
        assert report.convergence_time == pytest.approx(5.0)

    def test_never_converging_trace_reported(self):
        events = [step(0, 0, 1.0, 4.0, exceeded=True)]
        events += [lbl(1, 0, ops.ENTRY_START, 4.0)]  # waits forever
        events += session(2, 1, 10.0, 10.2, 10.4, 10.5)
        events += [step(6, 1, 29.0, 29.5)]  # the trace extends to 29.5
        tr = build(events)
        # pid 0 is still unserved when the window closes at 29.5 and the
        # trailing unserved interval (10.4 -> 29.5) exceeds psi: convergence
        # cannot be certified from this trace.
        report = check_resilience(tr, psi_deltas=2.0)
        assert report.convergence_time is None
        assert not report.resilient

    def test_safety_violation_reported(self):
        events = session(0, 0, 0.0, 1.0, 3.0, 3.2)
        events += session(4, 1, 0.5, 2.0, 4.0, 4.2)  # overlaps pid 0
        tr = build(events)
        report = check_resilience(tr, psi_deltas=10.0)
        assert not report.safety_ok

    def test_efficiency_measured_on_prefailure_prefix(self):
        # Clean till 10, then failure, then a long wait: efficiency judged
        # on the prefix only.
        events = session(0, 0, 0.0, 0.5, 1.0, 1.1)
        events += [step(4, 0, 10.0, 14.0, exceeded=True)]
        events += session(5, 0, 14.0, 25.0, 25.5, 25.6)
        events += session(9, 0, 26.0, 26.2, 26.5, 26.6)
        tr = build(events)
        report = check_resilience(tr, psi_deltas=2.0)
        assert report.efficiency_ok
        assert report.convergence_time == pytest.approx(25.0 - 14.0)


class TestConsensusResilience:
    def test_clean_fast_decisions(self):
        tr = build([
            lbl(0, 0, ops.DECIDED, 3.0, value=1),
            lbl(1, 1, ops.DECIDED, 4.0, value=1),
        ])
        report = check_consensus_resilience(tr, psi_deltas=15.0)
        assert report.converged
        assert report.efficiency_ok
        assert report.convergence_time == pytest.approx(4.0)

    def test_slow_decision_without_failures_flagged(self):
        tr = build([lbl(0, 0, ops.DECIDED, 99.0, value=1)])
        report = check_consensus_resilience(tr, psi_deltas=15.0)
        assert not report.efficiency_ok

    def test_decisions_measured_from_last_failure(self):
        tr = build([
            step(0, 0, 0.0, 50.0, exceeded=True),
            lbl(1, 0, ops.DECIDED, 60.0, value=1),
        ])
        report = check_consensus_resilience(tr, psi_deltas=15.0)
        assert report.convergence_time == pytest.approx(10.0)
        assert report.converged

    def test_missing_decider_flagged(self):
        tr = build([lbl(0, 0, ops.DECIDED, 3.0, value=1)])
        report = check_consensus_resilience(tr, psi_deltas=15.0,
                                            decided_pids=[0, 1])
        assert not report.converged
        assert any("never decided" in v for v in report.violations)


class TestResilienceEdgeCases:
    """The degenerate inputs the chaos monitors must be able to trust."""

    def test_no_failure_windows_at_all(self):
        # A failure-free trace: last_failure defaults to 0, convergence is
        # immediate, and the efficiency clause judges the whole trace.
        tr = build(session(0, 0, 0.0, 0.5, 1.0, 1.2))
        assert not tr.timing_failures()
        report = check_resilience(tr, psi_deltas=2.0)
        assert report.last_failure == 0.0
        assert report.convergence_time == 0.0
        assert report.resilient

    def test_failures_that_never_stop(self):
        # The trace's last exceeded step completes exactly at its end:
        # there is no failure-free suffix, so convergence must be reported
        # False — not crash, and not a vacuous 0.0.
        events = session(0, 0, 0.0, 0.5, 1.0, 1.2)
        events += [step(4, 0, 2.0, 8.0, exceeded=True)]  # runs to the end
        tr = build(events)
        report = check_resilience(tr, psi_deltas=2.0)
        assert report.convergence_time is None
        assert not report.converged
        assert not report.resilient
        assert any("persist" in v for v in report.violations)

    def test_declared_failure_end_beyond_trace(self):
        # A caller declaring an open-ended fault window (last_failure=inf,
        # e.g. a campaign whose window never closes) gets the same honest
        # verdict instead of an empty-suffix pass.
        import math

        tr = build(session(0, 0, 0.0, 0.5, 1.0, 1.2))
        report = check_resilience(tr, psi_deltas=2.0, last_failure=math.inf)
        assert report.convergence_time is None
        assert not report.resilient

    def test_convergence_exactly_at_trace_end(self):
        # The long unserved interval closes exactly when the trace does:
        # nothing failure-free follows the claimed convergence point, so it
        # cannot be certified from this observation window.
        events = [step(0, 0, 1.0, 4.0, exceeded=True)]
        events += session(1, 0, 4.0, 12.0, 12.4, 12.5)  # CS_ENTER at end-ish
        tr = build(events)
        assert tr.end_time == pytest.approx(12.5)
        report = check_resilience(tr, psi_deltas=2.0)
        # The unserved interval is 4.0 -> 12.0; the trace extends past it
        # only by the CS itself.  Convergence IS measurable here…
        assert report.convergence_time == pytest.approx(8.0)
        # …but when the interval end coincides with the trace end it is not.
        truncated = [step(0, 0, 1.0, 4.0, exceeded=True)]
        truncated += [lbl(1, 0, ops.ENTRY_START, 4.0),
                      lbl(2, 0, ops.CS_ENTER, 12.0)]
        tr2 = build(truncated)
        assert tr2.end_time == pytest.approx(12.0)
        report2 = check_resilience(tr2, psi_deltas=2.0)
        assert report2.convergence_time is None
        assert any("convergence" in v for v in report2.violations)
