"""Tests for Algorithm 3 — stabilization, efficiency, convergence (§3)."""

import pytest

from repro.algorithms import (
    BakeryLock,
    BarDavidLock,
    LamportFastLock,
    mutex_session,
)
from repro.core.mutex import TimeResilientMutex, default_time_resilient_mutex
from repro.core.resilience import check_resilience
from repro.sim import (
    AsynchronousTiming,
    ConstantTiming,
    Engine,
    FailureWindowTiming,
    HookTiming,
    PerProcessTiming,
    PidOrderTieBreak,
    RunStatus,
    UniformTiming,
    failure_window,
    stall_write_to,
)
from repro.sim.registers import RegisterNamespace
from repro.spec import check_mutual_exclusion, time_complexity


def run(lock, n, sessions=3, timing=None, cs=0.2, ncs=0.3, max_time=50_000.0,
        tie=None, starts=None):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.4),
                 max_time=max_time, tie_break=tie)
    for pid in range(n):
        eng.spawn(
            mutex_session(lock, pid, sessions, cs_duration=cs, ncs_duration=ncs,
                          start_delay=0.0 if starts is None else starts[pid]),
            pid=pid,
        )
    return eng.run()


class TestStabilization:
    """Safety (mutual exclusion) must hold even during timing failures."""

    def test_exclusion_survives_doorway_breach(self):
        """The stall that breaks Fischer must NOT break Algorithm 3."""
        n = 3
        lock = default_time_resilient_mutex(n, delta=1.0)
        hook = stall_write_to(lock.x.name, duration=3.0, pids=[0], count=1)
        res = run(lock, n, sessions=2, cs=4.0,
                  timing=HookTiming(ConstantTiming(0.4), hook))
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_exclusion_fully_asynchronous(self, seed):
        n = 3
        lock = default_time_resilient_mutex(n, delta=1.0)
        res = run(lock, n, sessions=3,
                  timing=AsynchronousTiming(base=0.3, tail_prob=0.3, seed=seed),
                  max_time=200_000.0)
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    def test_exclusion_under_failure_windows(self):
        n = 4
        lock = default_time_resilient_mutex(n, delta=1.0)
        timing = FailureWindowTiming(
            ConstantTiming(0.4),
            [failure_window(1.0, 6.0, stretch=20.0),
             failure_window(20.0, 24.0, stretch=15.0, pids=[1, 2])],
        )
        res = run(lock, n, sessions=4, timing=timing)
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []


class TestEfficiency:
    """Without timing failures the lock costs O(Δ) (the §3 headline)."""

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_time_complexity_constant_deltas(self, n):
        lock = default_time_resilient_mutex(n, delta=1.0)
        res = run(lock, n, sessions=3, cs=0.2, ncs=0.2,
                  timing=ConstantTiming(0.2))
        assert res.status is RunStatus.COMPLETED
        assert res.trace.timing_failures() == []
        tc = time_complexity(res.trace)
        assert tc <= 6.0, f"n={n}: time complexity {tc} is not O(Δ)"

    def test_time_complexity_flat_in_n(self):
        """The crucial shape: Algorithm 3's metric does not grow with n."""

        def metric(n):
            lock = default_time_resilient_mutex(n, delta=1.0)
            res = run(lock, n, sessions=2, cs=0.2, ncs=0.2,
                      timing=ConstantTiming(0.2))
            return time_complexity(res.trace)

        assert metric(16) <= metric(2) + 2.0

    def test_bakery_metric_grows_with_n(self):
        """The asynchronous contrast: bakery pays Θ(n) steps per handover."""

        def metric(n):
            lock = BakeryLock(n)
            res = run(lock, n, sessions=2, cs=0.2, ncs=0.2,
                      timing=ConstantTiming(0.2))
            return time_complexity(res.trace)

        assert metric(16) > metric(2) + 2.0

    def test_solo_entry_constant_steps(self):
        lock = default_time_resilient_mutex(16, delta=1.0)
        res = run(lock, 1, sessions=1, cs=0.0, ncs=0.0)
        assert res.trace.shared_step_count(0) <= 16


class TestConditionalReset:
    """Line 8: of the flooded processes at most one re-opens the doorway."""

    def test_non_owner_exit_leaves_x_alone(self):
        n = 2
        lock = default_time_resilient_mutex(n, delta=1.0)
        # Breach the doorway so both processes are inside A; the one whose
        # id is NOT in x must leave x unchanged on exit.
        hook = stall_write_to(lock.x.name, duration=3.0, pids=[0], count=1)
        res = run(lock, n, sessions=1, cs=4.0,
                  timing=HookTiming(ConstantTiming(0.4), hook))
        x_writes = [e for e in res.trace
                    if e.kind == "write" and e.register == lock.x.name]
        resets = [e for e in x_writes if e.value is None]
        # Two processes entered; exactly one reset (the current owner).
        assert len(resets) == 1

    def test_owner_exit_resets(self):
        lock = default_time_resilient_mutex(1, delta=1.0)
        res = run(lock, 1, sessions=1)
        assert res.memory.peek(lock.x) is None  # FREE again


class TestConvergence:
    """Theorem 3.2 vs 3.3: the embedded lock's fairness drives convergence."""

    @staticmethod
    def _flood_scenario(variant, n=5, victim=0, max_time=400.0, seed=0):
        """Breach the doorway so the victim is flooded into A, keep the
        victim at the legal speed bound Δ while fast traffic hammers the
        lock, and see how long the victim needs to drain.
        """
        ns = RegisterNamespace(("conv", variant, seed))
        if variant == "deadlock_free":
            inner = LamportFastLock(n, namespace=ns.child("lf"))
        else:
            inner = BarDavidLock(
                LamportFastLock(n, namespace=ns.child("lf")), n,
                namespace=ns.child("gate"),
            )
        lock = TimeResilientMutex(inner, delta=1.0, namespace=ns.child("door"))
        base = PerProcessTiming({victim: 1.0}, default=0.05)
        hook = stall_write_to(lock.x.name, duration=2.5, pids=[victim], count=1)
        eng = Engine(delta=1.0, timing=HookTiming(base, hook), max_time=max_time,
                     tie_break=PidOrderTieBreak([1, 2, 3, 4, victim]))
        for pid in range(n):
            sessions = 1 if pid == victim else 10_000
            start = 0.0 if pid in (victim, 1) else 4.0
            eng.spawn(
                mutex_session(lock, pid, sessions, cs_duration=0.05,
                              ncs_duration=0.0, start_delay=start),
                pid=pid,
            )
        res = eng.run()
        victim_entries = res.trace.cs_intervals(pid=victim)
        victim_entry_time = victim_entries[0].enter if victim_entries else None
        return res, victim_entry_time

    def test_starvation_free_inner_drains_victim_quickly(self):
        res, entry = self._flood_scenario("starvation_free")
        assert check_mutual_exclusion(res.trace) == []
        assert entry is not None
        assert entry < 30.0

    def test_deadlock_free_inner_delays_victim_much_longer(self):
        """The measurable face of Theorem 3.2: with a deadlock-free-only
        embedded lock the flooded victim's drain time blows up (here ~3-4x;
        the theorem says no bound exists at all)."""
        _, df_entry = self._flood_scenario("deadlock_free")
        _, sf_entry = self._flood_scenario("starvation_free")
        assert sf_entry is not None
        assert df_entry is None or df_entry > 2.0 * sf_entry

    def test_resilience_report_converges_for_default_lock(self):
        n = 3
        lock = default_time_resilient_mutex(n, delta=1.0)
        timing = FailureWindowTiming(
            ConstantTiming(0.2), [failure_window(0.0, 5.0, stretch=30.0)]
        )
        res = run(lock, n, sessions=6, cs=0.2, ncs=0.2, timing=timing)
        assert res.status is RunStatus.COMPLETED
        report = check_resilience(res.trace, psi_deltas=8.0)
        assert report.safety_ok
        assert report.converged, report


class TestComposition:
    def test_doorway_and_inner_registers_disjoint(self):
        n = 3
        lock = default_time_resilient_mutex(n, delta=1.0)
        res = run(lock, n, sessions=2)
        names = res.memory.touched_registers
        assert lock.x.name in names
        # The doorway register must not be one of A's registers.
        inner_names = names - {lock.x.name}
        assert all(name != lock.x.name for name in inner_names)

    def test_register_count_is_inner_plus_one(self):
        n = 4
        lock = default_time_resilient_mutex(n, delta=1.0)
        inner_count = lock.inner.register_count(n)
        assert lock.register_count(n) == inner_count + 1

    def test_any_inner_lock_plugs_in(self):
        n = 3
        ns = RegisterNamespace("bakery_inner")
        lock = TimeResilientMutex(
            BakeryLock(n, namespace=ns.child("A")), delta=1.0,
            namespace=ns.child("door"),
        )
        res = run(lock, n, sessions=2)
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            TimeResilientMutex(LamportFastLock(2), delta=0.0)

    def test_properties_reflect_composition(self):
        lock = default_time_resilient_mutex(3, delta=1.0)
        props = lock.properties
        assert props.timing_based
        assert props.fast
        assert props.exclusion_resilient
        assert not props.starvation_free  # the doorway is unfair

    @pytest.mark.parametrize("seed", range(4))
    def test_jitter_runs_clean(self, seed):
        n = 4
        lock = default_time_resilient_mutex(n, delta=1.0)
        res = run(lock, n, sessions=3, timing=UniformTiming(0.05, 1.0, seed=seed))
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []
