"""Tests for Algorithm 1 — each clause of Theorem 2.1 plus safety theorems."""

import pytest

from repro.core.consensus import TimeResilientConsensus, run_consensus
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    HookTiming,
    PerProcessTiming,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
    failure_window,
    stall_write_to,
)
from repro.spec import check_consensus


class TestTheorem21Item1_Efficiency:
    """No timing failures ⇒ decide within 15·Δ (first two rounds)."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16])
    def test_decision_within_15_delta(self, n):
        inputs = [i % 2 for i in range(n)]
        r = run_consensus(inputs, delta=1.0, timing=ConstantTiming(1.0))
        assert r.verdict.ok
        assert r.max_decision_time_in_deltas <= 15.0, r.max_decision_time_in_deltas

    @pytest.mark.parametrize("seed", range(5))
    def test_decision_within_15_delta_jitter(self, seed):
        r = run_consensus(
            [0, 1, 0, 1], delta=1.0, timing=UniformTiming(0.2, 1.0, seed=seed)
        )
        assert r.verdict.ok
        assert r.max_decision_time_in_deltas <= 15.0

    def test_at_most_two_rounds_without_failures(self):
        r = run_consensus([0, 1, 1, 0], delta=1.0, timing=ConstantTiming(0.7))
        # One delay per non-deciding round: nobody delays more than once.
        for pid in range(4):
            delays = [e for e in r.run.trace.for_pid(pid) if e.kind == "delay"]
            assert len(delays) <= 1


class TestTheorem21Item2_Recovery:
    """Failures stopping at round r ⇒ decision by end of round r+1."""

    @pytest.mark.parametrize("stall", [3.0, 8.0, 20.0])
    def test_decides_after_failure_window(self, stall):
        timing = FailureWindowTiming(
            ConstantTiming(0.8),
            [failure_window(0.0, stall, pids=[0], duration=stall)],
        )
        r = run_consensus([0, 1], delta=1.0, timing=timing, max_time=10_000.0)
        assert r.verdict.ok, r.verdict

    def test_at_most_two_delays_after_failures_stop(self):
        """After the last timing failure, each process needs <= 2 more rounds."""
        timing = FailureWindowTiming(
            ConstantTiming(0.8), [failure_window(0.0, 6.0, duration=7.0)]
        )
        r = run_consensus([0, 1, 1], delta=1.0, timing=timing, max_time=10_000.0)
        assert r.verdict.ok
        last_failure = r.run.trace.last_failure_time
        for pid in range(3):
            late_delays = [
                e
                for e in r.run.trace.for_pid(pid)
                if e.kind == "delay" and e.issued >= last_failure
            ]
            assert len(late_delays) <= 2, (pid, late_delays)


class TestTheorem21Item3_WaitFreedom:
    @pytest.mark.parametrize("crash_step", [0, 1, 2, 3, 4, 5, 6])
    def test_survivor_decides_despite_crash_at_any_step(self, crash_step):
        r = run_consensus(
            [0, 1],
            delta=1.0,
            timing=ConstantTiming(0.8),
            crashes=CrashSchedule(after_steps={0: crash_step}),
        )
        assert r.run.status is RunStatus.COMPLETED
        v = r.verdict
        assert v.ok, (crash_step, v)
        assert 1 in v.decisions

    def test_all_but_one_crash(self):
        n = 6
        r = run_consensus(
            [i % 2 for i in range(n)],
            delta=1.0,
            timing=ConstantTiming(0.8),
            crashes=CrashSchedule.crash_all_but(survivor=3, pids=range(n), after_steps=2),
        )
        assert r.verdict.ok
        assert set(r.decisions) == {3}

    def test_crash_mid_failure_window(self):
        timing = FailureWindowTiming(
            ConstantTiming(0.8), [failure_window(0.0, 5.0, duration=6.0)]
        )
        r = run_consensus(
            [0, 1, 1],
            delta=1.0,
            timing=timing,
            crashes=CrashSchedule(at_time={0: 2.0}),
            max_time=10_000.0,
        )
        assert r.verdict.ok


class TestTheorem21Item4_FastPath:
    def test_solo_decides_in_7_steps_no_delay(self):
        r = run_consensus([1], delta=1.0, timing=ConstantTiming(0.9))
        assert r.run.trace.shared_step_count(0) == 7
        assert [e for e in r.run.trace if e.kind == "delay"] == []

    def test_solo_fast_even_during_timing_failures(self):
        """'regardless of timing failures' — the solo path has no delay."""
        timing = FailureWindowTiming(
            ConstantTiming(0.9), [failure_window(0.0, 100.0, stretch=10.0)]
        )
        r = run_consensus([0], delta=1.0, timing=timing, max_time=10_000.0)
        assert r.verdict.ok
        assert r.run.trace.shared_step_count(0) == 7

    def test_late_arrival_adopts_standing_decision_quickly(self):
        r = run_consensus(
            [1, 1], delta=1.0, timing=ConstantTiming(0.9), start_times=[0.0, 50.0]
        )
        assert r.verdict.ok
        # The late process reads `decide` already set: 1 read + maybe a
        # few more steps, far fewer than a full round.
        assert r.run.trace.shared_step_count(1) <= 7

    def test_unanimous_inputs_decide_in_round_one(self):
        r = run_consensus([1, 1, 1], delta=1.0, timing=ConstantTiming(0.9))
        assert r.verdict.ok
        assert [e for e in r.run.trace if e.kind == "delay"] == []


class TestTheorem21Item5_UnboundedParticipants:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 64])
    def test_scales_without_knowing_n(self, n):
        r = run_consensus([i % 2 for i in range(n)], delta=1.0,
                          timing=ConstantTiming(1.0))
        assert r.verdict.ok
        assert r.max_decision_time_in_deltas <= 15.0

    def test_staggered_unbounded_arrivals(self):
        n = 10
        r = run_consensus(
            [i % 2 for i in range(n)],
            delta=1.0,
            timing=ConstantTiming(0.8),
            start_times=[2.0 * i for i in range(n)],
        )
        assert r.verdict.ok


class TestSafetyTheorems:
    """Theorems 2.2 (validity) and 2.3 (agreement) under adversity."""

    def test_validity_binary(self):
        for inputs in ([0, 0], [1, 1], [0, 1]):
            r = run_consensus(list(inputs), delta=1.0, timing=ConstantTiming(0.8))
            assert set(r.decisions.values()) <= set(inputs)

    def test_unanimous_inputs_decide_that_value(self):
        r = run_consensus([0, 0, 0], delta=1.0, timing=ConstantTiming(0.8))
        assert set(r.decisions.values()) == {0}

    def test_agreement_under_targeted_y_stall(self):
        """The exact adversary that breaks AT consensus must NOT break Alg 1."""
        consensus = TimeResilientConsensus(delta=1.0)
        hook = stall_write_to(
            lambda name: isinstance(name, tuple)
            and isinstance(name[0], tuple)
            and name[0][-1] == "y",
            duration=6.0,
            pids=[0],
            count=1,
        )
        eng = Engine(delta=1.0, timing=HookTiming(ConstantTiming(0.4), hook),
                     max_time=10_000.0)
        eng.spawn(consensus.propose(0, 0), pid=0)
        eng.spawn(consensus.propose(1, 1), pid=1)
        res = eng.run()
        v = check_consensus(res, {0: 0, 1: 1},
                            require_termination=res.status is RunStatus.COMPLETED)
        assert v.safe, v

    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_heterogeneous_speeds(self, seed):
        timing = PerProcessTiming({0: 0.1, 1: 1.0, 2: 0.5}, default=0.4)
        r = run_consensus([0, 1, 0], delta=1.0, timing=timing,
                          tie_break=RandomTieBreak(seed))
        assert r.verdict.ok


class TestAlgorithmObject:
    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            TimeResilientConsensus(delta=0)

    def test_rejects_bad_max_rounds(self):
        with pytest.raises(ValueError):
            TimeResilientConsensus(delta=1.0, max_rounds=0)

    def test_rejects_none_proposal(self):
        c = TimeResilientConsensus(delta=1.0)
        with pytest.raises(ValueError):
            list(c.propose(0, None))

    def test_rejects_nonbinary_proposal(self):
        r = TimeResilientConsensus(delta=1.0)
        eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
        eng.spawn(r.propose(0, 2), pid=0)
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            eng.run()

    def test_two_instances_do_not_collide(self):
        from repro.sim.registers import RegisterNamespace

        a = TimeResilientConsensus(delta=1.0, namespace=RegisterNamespace("A"))
        b = TimeResilientConsensus(delta=1.0, namespace=RegisterNamespace("B"))
        eng = Engine(delta=1.0, timing=ConstantTiming(0.5))
        eng.spawn(a.propose(0, 0), pid=0)
        eng.spawn(b.propose(1, 1), pid=1)
        res = eng.run()
        assert res.returns == {0: 0, 1: 1}  # independent decisions

    def test_infinite_arrays_allocated_lazily(self):
        r = run_consensus([1], delta=1.0)
        # Solo run touches round 1 only: x[1,1], y[1], x[1,0], decide.
        assert r.run.memory.register_count == 4
