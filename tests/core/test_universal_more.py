"""Additional universal-construction coverage: register objects, replica
consistency, long scripts, mixed objects in one run."""

import pytest

from repro.core.derived import Universal
from repro.sim import (
    ConstantTiming,
    Engine,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
)
from repro.spec import (
    RegisterModel,
    check_linearizability,
    history_from_trace,
)


def run_clients(universal, scripts, timing=None, tie=None):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.5),
                 tie_break=tie, max_time=300_000.0)

    def client(pid, ops_list):
        handle = universal.client(pid)
        results = []
        for name, args in ops_list:
            results.append((yield from handle.invoke(name, *args)))
        return results, handle

    handles = {}

    def wrapper(pid, ops_list):
        results, handle = yield from client(pid, ops_list)
        handles[pid] = handle
        return results

    for pid, ops_list in scripts.items():
        eng.spawn(wrapper(pid, ops_list), pid=pid)
    res = eng.run()
    return res, handles


class TestRegisterObject:
    def test_read_write_register(self):
        reg = Universal(n=2, delta=1.0, model=RegisterModel(initial=0),
                        object_id="r")
        scripts = {
            0: [("write", (5,)), ("read", ())],
            1: [("read", ()), ("write", (9,)), ("read", ())],
        }
        res, _ = run_clients(reg, scripts, timing=UniformTiming(0.1, 1.0, seed=3))
        assert res.status is RunStatus.COMPLETED
        history = history_from_trace(res.trace, obj="r")
        assert check_linearizability(history, RegisterModel(initial=0)).ok


class TestReplicaConsistency:
    def test_all_replicas_converge_to_same_state(self):
        from repro.spec import CounterModel

        counter = Universal(n=3, delta=1.0, model=CounterModel(),
                            object_id="c")
        scripts = {pid: [("increment", ())] * 2 + [("read", ())]
                   for pid in range(3)}
        res, handles = run_clients(counter, scripts,
                                   timing=UniformTiming(0.05, 1.0, seed=8),
                                   tie=RandomTieBreak(8))
        assert res.status is RunStatus.COMPLETED
        # Replicas may have replayed different prefixes, but every state is
        # a value the counter actually passed through, and the maximum is
        # the full count.
        states = sorted(h.local_state for h in handles.values())
        assert states[-1] <= 6
        final_reads = [res.returns[pid][-1] for pid in range(3)]
        assert all(0 <= r <= 6 for r in final_reads)

    def test_long_single_client_script(self):
        from repro.spec import QueueModel

        queue = Universal(n=1, delta=1.0, model=QueueModel(), object_id="q")
        script = [("enqueue", (i,)) for i in range(10)]
        script += [("dequeue", ())] * 10
        res, _ = run_clients(queue, {0: script})
        assert res.returns[0][10:] == list(range(10))


class TestMixedObjects:
    def test_two_objects_share_one_run(self):
        from repro.spec import QueueModel, StackModel

        queue = Universal(n=2, delta=1.0, model=QueueModel(), object_id="q2")
        stack = Universal(n=2, delta=1.0, model=StackModel(), object_id="s2")

        def worker(pid):
            q = queue.client(pid)
            s = stack.client(pid)
            yield from q.invoke("enqueue", pid)
            yield from s.invoke("push", pid * 10)
            a = yield from q.invoke("dequeue")
            b = yield from s.invoke("pop")
            return (a, b)

        eng = Engine(delta=1.0, timing=UniformTiming(0.1, 1.0, seed=12),
                     max_time=300_000.0)
        for pid in range(2):
            eng.spawn(worker(pid), pid=pid)
        res = eng.run()
        assert res.status is RunStatus.COMPLETED
        q_hist = history_from_trace(res.trace, obj="q2")
        s_hist = history_from_trace(res.trace, obj="s2")
        from repro.spec import QueueModel as QM, StackModel as SM

        assert check_linearizability(q_hist, QM()).ok
        assert check_linearizability(s_hist, SM()).ok
