"""Tests for the self-tuning Algorithm 3 (§3.3's closing remark)."""

import pytest

from repro.analysis.ablations import embedded_population
from repro.core.adaptive import AdaptiveMutex, default_adaptive_mutex
from repro.algorithms import mutex_session
from repro.sim import ConstantTiming, Engine, RunStatus, UniformTiming
from repro.sim.registers import RegisterNamespace
from repro.spec import check_mutual_exclusion


def run(lock, n, sessions, timing, max_time=100_000.0):
    eng = Engine(delta=1.0, timing=timing, max_time=max_time)
    for pid in range(n):
        eng.spawn(mutex_session(lock, pid, sessions, cs_duration=0.2,
                                ncs_duration=0.2), pid=pid)
    return eng.run()


class TestSafety:
    @pytest.mark.parametrize("estimate", [0.01, 0.5, 5.0])
    def test_exclusion_at_any_estimate(self, estimate):
        lock = default_adaptive_mutex(3, initial_estimate=estimate,
                                      namespace=RegisterNamespace(("ad", estimate)))
        res = run(lock, 3, 3, UniformTiming(0.05, 1.0, seed=1))
        assert res.status is RunStatus.COMPLETED
        assert check_mutual_exclusion(res.trace) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            default_adaptive_mutex(2, initial_estimate=0)
        with pytest.raises(ValueError):
            default_adaptive_mutex(2, initial_estimate=1.0, growth=1.0)


class TestAdaptationArc:
    """Tiny estimate -> doorway breached -> estimate grows -> serialized."""

    def test_estimate_grows_under_breaches(self):
        n = 4
        lock = default_adaptive_mutex(n, initial_estimate=0.01,
                                      namespace=RegisterNamespace("arc1"))
        res = run(lock, n, 10, UniformTiming(0.05, 1.0, seed=3),
                  max_time=2_000.0)
        assert res.status is RunStatus.COMPLETED
        final = res.memory.peek(lock.estimate)
        assert final > 0.01  # contention was sensed and the estimate grew

    def test_population_returns_to_one(self):
        n = 4
        lock = default_adaptive_mutex(n, initial_estimate=0.01,
                                      namespace=RegisterNamespace("arc2"))
        res = run(lock, n, 20, UniformTiming(0.05, 1.0, seed=5),
                  max_time=5_000.0)
        assert res.status is RunStatus.COMPLETED
        # Early phase may flood A; the tail must be serialized again.
        tail = embedded_population(res.trace, since=res.trace.end_time * 0.7)
        assert tail == 1, tail

    def test_good_initial_estimate_never_grows(self):
        n = 3
        lock = default_adaptive_mutex(n, initial_estimate=1.0,
                                      namespace=RegisterNamespace("arc3"))
        res = run(lock, n, 5, UniformTiming(0.05, 1.0, seed=7))
        final = res.memory.peek(lock.estimate)
        assert final == pytest.approx(1.0)

    def test_shrink_restores_optimism(self):
        n = 2
        lock = default_adaptive_mutex(
            n, initial_estimate=4.0, shrink_after=2, shrink_step=0.5,
            namespace=RegisterNamespace("arc4"),
        )
        res = run(lock, n, 8, ConstantTiming(0.2))
        final = res.memory.peek(lock.estimate)
        assert final < 4.0

    def test_ceiling_clamps(self):
        n = 4
        lock = default_adaptive_mutex(
            n, initial_estimate=0.01, ceiling=2.0,
            namespace=RegisterNamespace("arc5"),
        )
        res = run(lock, n, 10, UniformTiming(0.05, 1.0, seed=9),
                  max_time=2_000.0)
        assert res.memory.peek(lock.estimate) <= 2.0


class TestProperties:
    def test_register_count(self):
        lock = default_adaptive_mutex(4, initial_estimate=1.0)
        inner_count = lock.inner.register_count(4)
        assert lock.register_count(4) == inner_count + 3

    def test_timing_based_flag(self):
        lock = default_adaptive_mutex(2, initial_estimate=1.0)
        assert lock.properties.timing_based
        assert lock.properties.exclusion_resilient
