"""Tests for the finite-register consensus (the paper's open-problem
remark, under explicit bounded-failure + min-step assumptions)."""

import pytest

from repro.core.bounded import BoundedConsensus, RoundBudgetExceeded
from repro.core.consensus import labeled_decision
from repro.sim import (
    ConstantTiming,
    Engine,
    FailureWindowTiming,
    HookTiming,
    RunStatus,
    SimulationError,
    UniformTiming,
    failure_window,
)
from repro.sim.adversary import round_conflict_hook
from repro.sim.registers import RegisterNamespace
from repro.spec import check_consensus


def run(consensus, inputs, timing, max_time=50_000.0):
    eng = Engine(delta=consensus.delta, timing=timing, max_time=max_time)
    for pid, v in inputs.items():
        eng.spawn(labeled_decision(consensus.propose(pid, v)), pid=pid)
    return eng.run()


class TestRoundBudget:
    def test_budget_formula(self):
        c = BoundedConsensus(delta=1.0, failure_bound=10.0, min_step=0.1)
        assert c.max_rounds == 22  # ceil(10 / 0.5) + 2
        assert c.register_count() == 3 * 22 + 1

    def test_zero_failure_bound_gives_two_rounds(self):
        c = BoundedConsensus(delta=1.0, failure_bound=0.0, min_step=0.1)
        assert c.max_rounds == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedConsensus(delta=0, failure_bound=1, min_step=0.1)
        with pytest.raises(ValueError):
            BoundedConsensus(delta=1, failure_bound=-1, min_step=0.1)
        with pytest.raises(ValueError):
            BoundedConsensus(delta=1, failure_bound=1, min_step=0)


class TestWithinAssumptions:
    def test_clean_run_decides_within_budget(self):
        c = BoundedConsensus(delta=1.0, failure_bound=0.0, min_step=0.2)
        inputs = {0: 0, 1: 1}
        res = run(c, inputs, ConstantTiming(0.5))
        assert res.status is RunStatus.COMPLETED
        assert check_consensus(res, inputs).ok
        assert res.memory.register_count <= c.register_count()

    @pytest.mark.parametrize("window", [2.0, 5.0, 10.0])
    def test_transient_failures_within_bound_decide(self, window):
        c = BoundedConsensus(delta=1.0, failure_bound=window, min_step=0.2,
                             namespace=RegisterNamespace(("b", window)))
        timing = FailureWindowTiming(
            # Base steps respect the min_step assumption.
            UniformTiming(0.2, 1.0, seed=int(window)),
            [failure_window(0.0, window, stretch=25.0)],
        )
        inputs = {0: 0, 1: 1, 2: 0}
        res = run(c, inputs, timing)
        assert res.status is RunStatus.COMPLETED
        assert check_consensus(res, inputs).ok
        # The finite register bank really bounded the space.
        assert res.memory.register_count <= c.register_count()

    def test_budget_not_reached_under_assumptions(self):
        c = BoundedConsensus(delta=1.0, failure_bound=4.0, min_step=0.25)
        timing = FailureWindowTiming(
            ConstantTiming(0.5), [failure_window(0.0, 4.0, stretch=20.0)]
        )
        inputs = {0: 0, 1: 1}
        res = run(c, inputs, timing)
        assert res.status is RunStatus.COMPLETED


class TestAssumptionViolated:
    def test_everlasting_adversary_trips_the_budget(self):
        """When failures never stop, the bounded variant fails loudly
        instead of silently reusing rounds (which would endanger safety)."""
        c = BoundedConsensus(delta=1.0, failure_bound=2.0, min_step=0.25)
        # The worst legal schedule sustains conflicts forever; with the
        # algorithm's own delay below its delta it never resolves... here
        # we instead just run the round-conflict adversary against an
        # undersized budget.
        timing = HookTiming(ConstantTiming(0.01), round_conflict_hook(1.0))
        eng = Engine(delta=1.0, timing=timing, max_time=10_000.0)
        # Undermine the delay so rounds keep failing (simulating an
        # environment whose failures outlast the assumed bound).
        c2 = BoundedConsensus(delta=0.05, failure_bound=2.0, min_step=0.25,
                              namespace=RegisterNamespace("b2"))
        for pid, v in {0: 0, 1: 1}.items():
            eng.spawn(c2.propose(pid, v), pid=pid)
        with pytest.raises(SimulationError) as excinfo:
            eng.run()
        assert isinstance(excinfo.value.__cause__, RoundBudgetExceeded)
