"""Tests for the optimistic(Δ) estimators and the tuning loop."""

import pytest

from repro.core.consensus import run_consensus
from repro.core.optimistic import (
    AimdEstimator,
    FixedEstimate,
    SlowStartEstimator,
    tune,
)
from repro.sim import ConstantTiming


class TestFixedEstimate:
    def test_constant(self):
        est = FixedEstimate(0.5)
        est.record_failure()
        est.record_success()
        assert est.current() == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedEstimate(0)


class TestAimd:
    def test_failure_grows_multiplicatively(self):
        est = AimdEstimator(initial=1.0, increase_factor=2.0)
        est.record_failure()
        assert est.current() == 2.0
        est.record_failure()
        assert est.current() == 4.0

    def test_success_shrinks_after_patience(self):
        est = AimdEstimator(initial=1.0, decrease_step=0.1, patience=3)
        est.record_success()
        est.record_success()
        assert est.current() == 1.0  # not yet
        est.record_success()
        assert est.current() == pytest.approx(0.9)

    def test_failure_resets_streak(self):
        est = AimdEstimator(initial=1.0, decrease_step=0.1, patience=2)
        est.record_success()
        est.record_failure()
        est.record_success()
        assert est.current() == 2.0  # no shrink: streak broken

    def test_clamped_to_floor_and_ceiling(self):
        est = AimdEstimator(initial=1.0, increase_factor=10.0, ceiling=5.0,
                            decrease_step=2.0, floor=0.5, patience=1)
        est.record_failure()
        assert est.current() == 5.0
        for _ in range(10):
            est.record_success()
        assert est.current() == 0.5

    def test_counts(self):
        est = AimdEstimator(initial=1.0)
        est.record_failure()
        est.record_success()
        assert est.failures == 1 and est.successes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AimdEstimator(initial=0)
        with pytest.raises(ValueError):
            AimdEstimator(initial=1, increase_factor=1.0)
        with pytest.raises(ValueError):
            AimdEstimator(initial=1, patience=0)
        with pytest.raises(ValueError):
            AimdEstimator(initial=1, floor=2.0, ceiling=1.0)


class TestSlowStart:
    def test_in_slow_start_until_first_success(self):
        est = SlowStartEstimator(initial=0.1)
        assert est.in_slow_start
        est.record_failure()
        assert est.in_slow_start
        est.record_success()
        assert not est.in_slow_start

    def test_doubles_during_slow_start(self):
        est = SlowStartEstimator(initial=0.1)
        est.record_failure()
        assert est.current() == pytest.approx(0.2)


class TestTune:
    def test_feedback_loop(self):
        est = AimdEstimator(initial=0.1, increase_factor=2.0, patience=100)
        # A fake instance: succeeds when the estimate reaches 0.75.
        steps = tune(est, lambda e: (e >= 0.75, e), instances=8)
        assert len(steps) == 8
        assert steps[0].estimate == pytest.approx(0.1)
        assert any(s.success for s in steps)
        # After enough failures the estimate crossed the threshold and stays.
        assert steps[-1].success

    def test_zero_instances(self):
        assert tune(FixedEstimate(1.0), lambda e: (True, 0.0), 0) == []

    def test_negative_instances_rejected(self):
        with pytest.raises(ValueError):
            tune(FixedEstimate(1.0), lambda e: (True, 0.0), -1)


class TestOptimisticDeltaEndToEnd:
    """The paper's claim: an underestimate never hurts safety, only latency."""

    @pytest.mark.parametrize("estimate", [0.1, 0.5, 1.0, 3.0])
    def test_safety_at_any_estimate(self, estimate):
        r = run_consensus([0, 1], delta=1.0, timing=ConstantTiming(1.0),
                          algorithm_delta=estimate, max_time=10_000.0)
        assert r.verdict.safe

    def test_underestimate_costs_extra_rounds(self):
        tiny = run_consensus([0, 1], delta=1.0, timing=ConstantTiming(1.0),
                             algorithm_delta=0.05, max_time=10_000.0)
        right = run_consensus([0, 1], delta=1.0, timing=ConstantTiming(1.0),
                              algorithm_delta=1.0)
        tiny_delays = len([e for e in tiny.run.trace if e.kind == "delay"])
        right_delays = len([e for e in right.run.trace if e.kind == "delay"])
        assert tiny.verdict.safe and right.verdict.ok
        assert tiny_delays >= right_delays

    def test_overestimate_costs_longer_delays(self):
        big = run_consensus([0, 1], delta=1.0, timing=ConstantTiming(1.0),
                            algorithm_delta=10.0)
        right = run_consensus([0, 1], delta=1.0, timing=ConstantTiming(1.0),
                              algorithm_delta=1.0)
        assert big.verdict.ok and right.verdict.ok
        if big.max_decision_time and right.max_decision_time:
            assert big.max_decision_time >= right.max_decision_time
