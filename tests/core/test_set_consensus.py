"""Tests for k-set consensus (paper §2.1's list of derivable objects)."""

import pytest

from repro.core.derived import SetConsensus
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
    failure_window,
)


def run_set(sc, inputs, timing=None, crashes=None, tie=None, max_time=50_000.0):
    eng = Engine(delta=1.0, timing=timing or ConstantTiming(0.5),
                 crashes=crashes, tie_break=tie, max_time=max_time)
    for pid, v in inputs.items():
        eng.spawn(sc.propose(pid, v), pid=pid)
    return eng.run()


class TestKAgreement:
    @pytest.mark.parametrize("n,k", [(4, 1), (4, 2), (6, 3), (6, 6), (5, 2)])
    def test_at_most_k_values_decided(self, n, k):
        sc = SetConsensus(n=n, k=k, delta=1.0)
        inputs = {pid: f"v{pid}" for pid in range(n)}
        res = run_set(sc, inputs)
        assert res.status is RunStatus.COMPLETED
        decided = set(res.returns.values())
        assert 1 <= len(decided) <= k

    def test_k_equals_1_is_consensus(self):
        sc = SetConsensus(n=4, k=1, delta=1.0)
        inputs = {pid: pid * 10 for pid in range(4)}
        res = run_set(sc, inputs)
        assert len(set(res.returns.values())) == 1

    def test_validity(self):
        n, k = 6, 2
        sc = SetConsensus(n=n, k=k, delta=1.0)
        inputs = {pid: f"v{pid}" for pid in range(n)}
        res = run_set(sc, inputs)
        assert set(res.returns.values()) <= set(inputs.values())

    @pytest.mark.parametrize("seed", range(4))
    def test_k_agreement_under_jitter(self, seed):
        n, k = 6, 2
        sc = SetConsensus(n=n, k=k, delta=1.0)
        inputs = {pid: pid for pid in range(n)}
        res = run_set(sc, inputs, timing=UniformTiming(0.05, 1.0, seed=seed),
                      tie=RandomTieBreak(seed))
        assert len(set(res.returns.values())) <= k


class TestGroups:
    def test_group_assignment(self):
        sc = SetConsensus(n=7, k=3, delta=1.0)
        assert [sc.group_of(pid) for pid in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_same_group_agrees(self):
        n, k = 6, 3
        sc = SetConsensus(n=n, k=k, delta=1.0)
        inputs = {pid: pid for pid in range(n)}
        res = run_set(sc, inputs)
        by_group = {}
        for pid, decision in res.returns.items():
            by_group.setdefault(sc.group_of(pid), set()).add(decision)
        for group, decisions in by_group.items():
            assert len(decisions) == 1, (group, decisions)


class TestResilience:
    def test_safety_under_timing_failures(self):
        n, k = 4, 2
        sc = SetConsensus(n=n, k=k, delta=1.0)
        timing = FailureWindowTiming(
            ConstantTiming(0.5), [failure_window(0.0, 8.0, stretch=20.0)]
        )
        inputs = {pid: pid for pid in range(n)}
        res = run_set(sc, inputs, timing=timing)
        assert res.status is RunStatus.COMPLETED
        assert len(set(res.returns.values())) <= k

    def test_wait_freedom_under_crashes(self):
        n, k = 6, 2
        sc = SetConsensus(n=n, k=k, delta=1.0)
        inputs = {pid: pid for pid in range(n)}
        res = run_set(sc, inputs,
                      crashes=CrashSchedule(after_steps={0: 2, 3: 5}))
        assert res.status is RunStatus.COMPLETED
        survivors = set(res.returns)
        assert survivors == {1, 2, 4, 5}
        assert len(set(res.returns.values())) <= k


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            SetConsensus(n=3, k=0, delta=1.0)
        with pytest.raises(ValueError):
            SetConsensus(n=3, k=4, delta=1.0)

    def test_bad_pid(self):
        sc = SetConsensus(n=3, k=2, delta=1.0)
        with pytest.raises(ValueError):
            sc.group_of(7)
