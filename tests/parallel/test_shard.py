"""Shard layout: exact partitions, boundary seeds, worker-count invariance."""

import pytest

from repro.parallel import Shard, derive_subseeds, make_shards


class TestMakeShards:
    def test_exact_partition_no_overlap_no_gap(self):
        shards = make_shards(10, 3)
        assert [(s.start, s.stop) for s in shards] == [(0, 4), (4, 7), (7, 10)]
        covered = [i for s in shards for i in range(s.start, s.stop)]
        assert covered == list(range(10))

    def test_even_split(self):
        shards = make_shards(8, 4)
        assert [s.count for s in shards] == [2, 2, 2, 2]

    def test_fewer_items_than_workers_drops_empty_shards(self):
        shards = make_shards(2, 8)
        assert [(s.start, s.stop) for s in shards] == [(0, 1), (1, 2)]
        assert all(s.count >= 1 for s in shards)

    def test_zero_items_means_no_shards(self):
        assert make_shards(0, 4) == []

    def test_single_worker_is_one_full_shard(self):
        (shard,) = make_shards(7, 1)
        assert (shard.start, shard.stop) == (0, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_shards(5, 0)
        with pytest.raises(ValueError):
            make_shards(-1, 2)

    def test_shard_range_validation(self):
        with pytest.raises(ValueError):
            Shard(index=0, start=3, stop=2)
        with pytest.raises(ValueError):
            Shard(index=0, start=0, stop=3, sub_seeds=(1,))

    def test_describe_names_the_seed_range(self):
        shard = make_shards(10, 3)[1]
        assert "[4, 7)" in shard.describe()


class TestSubSeeds:
    def test_deterministic_in_master_seed(self):
        assert derive_subseeds(123, 16) == derive_subseeds(123, 16)
        assert derive_subseeds(123, 16) != derive_subseeds(124, 16)

    def test_prefix_stable_under_count(self):
        """Item i's sub-seed does not depend on how many items follow."""
        assert derive_subseeds(9, 4) == derive_subseeds(9, 10)[:4]

    def test_worker_count_never_changes_an_items_subseed(self):
        """The determinism contract's seed half, pinned directly.

        Concatenating shard sub-seeds must reproduce the master stream
        for ANY worker count — i.e. item i sees the same sub-seed
        whether the range was split 1, 3, or 16 ways.
        """
        total, master = 23, "campaign-seed"
        reference = derive_subseeds(master, total)
        for workers in (1, 2, 3, 5, 16, 64):
            shards = make_shards(total, workers, master_seed=master)
            rebuilt = tuple(
                seed for shard in shards for seed in shard.sub_seeds
            )
            assert rebuilt == reference, f"workers={workers}"

    def test_shard_boundary_items_keep_their_seeds(self):
        """Boundary items (last-of-shard / first-of-next) stay aligned."""
        reference = derive_subseeds(0, 10)
        shards = make_shards(10, 3, master_seed=0)
        assert shards[0].sub_seeds[-1] == reference[3]
        assert shards[1].sub_seeds[0] == reference[4]
        assert shards[2].sub_seeds[0] == reference[7]
