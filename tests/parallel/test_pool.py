"""Pool semantics: in-process fallback, spawn path, crash surfacing."""

import os

import pytest

from repro.parallel import WorkerError, WorkerPool, make_shards, run_sharded, timing_rows

from .fabric import boom_worker, echo_subseeds_worker, square_worker


class TestInProcessFallback:
    def test_runs_every_shard_in_order(self):
        shards = make_shards(10, 3)
        results = run_sharded(square_worker, shards, workers=1)
        assert [r.shard.index for r in results] == [0, 1, 2]
        values = [v for r in results for v in r.value]
        assert values == [i * i for i in range(10)]

    def test_executes_in_calling_process(self):
        results = run_sharded(square_worker, make_shards(4, 2), workers=1)
        assert all(r.worker_pid == os.getpid() for r in results)

    def test_no_pickling_required(self):
        """workers=1 bypasses pickling: lambdas work as worker and payload."""
        shards = make_shards(6, 2)
        results = run_sharded(
            lambda shard, payload: payload(shard.count),
            shards,
            payload=lambda count: count * 100,
            workers=1,
        )
        assert [r.value for r in results] == [300, 300]

    def test_empty_shard_list(self):
        assert run_sharded(square_worker, [], workers=1) == []

    def test_records_wall_time(self):
        results = run_sharded(square_worker, make_shards(4, 2), workers=1)
        assert all(r.wall_seconds >= 0.0 for r in results)


class TestCrashSurfacing:
    def test_worker_exception_names_the_seed_range(self):
        """A crashed worker fails the campaign, citing the shard's seeds."""
        shards = make_shards(12, 3)  # shard 1 covers [4, 8)
        with pytest.raises(WorkerError) as excinfo:
            run_sharded(boom_worker, shards, payload=1, workers=1)
        message = str(excinfo.value)
        assert "seeds [4, 8)" in message
        assert "worker exploded on purpose" in message
        assert excinfo.value.shard.index == 1

    def test_worker_exception_surfaces_from_spawn_pool(self):
        shards = make_shards(4, 2)
        with pytest.raises(WorkerError) as excinfo:
            run_sharded(boom_worker, shards, payload=0, workers=2)
        assert "seeds [0, 2)" in str(excinfo.value)


class TestSpawnPool:
    def test_spawn_matches_in_process_and_is_reusable(self):
        """One pool, several campaigns: same values as the fallback path."""
        shards = make_shards(9, 4, master_seed=7)
        sequential = run_sharded(square_worker, shards, workers=1)
        seq_seeds = run_sharded(echo_subseeds_worker, shards, workers=1)
        with WorkerPool(2) as pool:
            parallel = pool.run(square_worker, shards)
            par_seeds = pool.run(echo_subseeds_worker, shards)
        assert [r.value for r in parallel] == [r.value for r in sequential]
        assert [r.value for r in par_seeds] == [r.value for r in seq_seeds]
        assert all(r.worker_pid != os.getpid() for r in parallel)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestTimingRows:
    def test_rows_carry_shard_identity_and_tags(self):
        results = run_sharded(square_worker, make_shards(10, 3), workers=1)
        rows = timing_rows(results, campaign="demo")
        assert [row["shard"] for row in rows] == [0, 1, 2]
        assert [(row["start"], row["stop"]) for row in rows] == [
            (0, 4), (4, 7), (7, 10),
        ]
        assert all(row["campaign"] == "demo" for row in rows)
        assert all(row["items"] in (3, 4) for row in rows)
        assert all("wall_s" in row and "worker_pid" in row for row in rows)
