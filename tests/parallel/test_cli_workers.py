"""--workers end to end: CLI equivalence across worker counts, usage errors."""

import json

import pytest

from repro.chaos.__main__ import main as chaos_main
from repro.verify.fuzz import main as fuzz_main


def _fuzz_summary(tmp_path, name, extra):
    path = tmp_path / name
    code = fuzz_main(
        ["--seed", "42", "--schedules", "24", "--json", str(path)] + extra
    )
    return code, path.read_bytes()


class TestFuzzCli:
    def test_workers_2_summary_is_byte_identical_to_workers_1(self, tmp_path):
        code_1, doc_1 = _fuzz_summary(tmp_path, "w1.json", ["--workers", "1"])
        code_2, doc_2 = _fuzz_summary(tmp_path, "w2.json", ["--workers", "2"])
        assert code_1 == code_2 == 0
        assert doc_1 == doc_2

    def test_summary_records_the_expected_fischer_find(self, tmp_path):
        _, doc = _fuzz_summary(tmp_path, "w.json", ["--workers", "2"])
        summary = json.loads(doc)
        by_name = {c["name"]: c for c in summary["campaigns"]}
        assert by_name["fischer_n3"]["failures"]  # violation expected & found
        assert by_name["alg3_n4"]["ok"] and by_name["consensus_n4"]["ok"]
        assert summary["ok"] is True

    def test_net_substrate_workers_2_matches_workers_1(self, tmp_path):
        args = ["--substrate", "net", "--seed", "7", "--schedules", "12"]
        p1, p2 = tmp_path / "n1.json", tmp_path / "n2.json"
        assert fuzz_main(args + ["--workers", "1", "--json", str(p1)]) == 0
        assert fuzz_main(args + ["--workers", "2", "--json", str(p2)]) == 0
        assert p1.read_bytes() == p2.read_bytes()

    def test_timing_json_is_written_per_shard(self, tmp_path):
        timing_path = tmp_path / "timing.json"
        code = fuzz_main([
            "--seed", "1", "--schedules", "8", "--workers", "2",
            "--timing-json", str(timing_path),
        ])
        assert code == 0
        timing = json.loads(timing_path.read_text())
        assert timing["workers"] == 2
        # 3 campaigns x 2 shards each
        assert len(timing["rows"]) == 6
        assert {row["campaign"] for row in timing["rows"]} == {
            "fischer_n3", "alg3_n4", "consensus_n4",
        }
        assert all("wall_s" in row and "worker_pid" in row
                   for row in timing["rows"])


class TestUsageErrors:
    def test_empty_campaign_is_a_usage_error(self):
        """--schedules 0 must exit 2, not vacuously pass with exit 0."""
        with pytest.raises(SystemExit) as excinfo:
            fuzz_main(["--schedules", "0"])
        assert excinfo.value.code == 2

    def test_negative_schedules_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            fuzz_main(["--schedules", "-5"])
        assert excinfo.value.code == 2

    def test_zero_workers_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            fuzz_main(["--workers", "0", "--schedules", "10"])
        assert excinfo.value.code == 2

    def test_chaos_zero_workers_is_a_usage_error(self):
        assert chaos_main(["run", "--workers", "0"]) == 2


class TestChaosCli:
    def test_workers_2_summary_matches_workers_1(self, tmp_path):
        base = [
            "run", "--target", "fischer_n3", "--seed", "demo-a",
            "--campaigns", "1", "--schedules", "8", "--expect", "violation",
        ]
        p1, p2 = tmp_path / "c1.json", tmp_path / "c2.json"
        t2 = tmp_path / "t2.json"
        assert chaos_main(base + ["--workers", "1", "--json", str(p1)]) == 0
        assert chaos_main(
            base + ["--workers", "2", "--json", str(p2),
                    "--timing-json", str(t2)]
        ) == 0
        assert p1.read_bytes() == p2.read_bytes()
        timing = json.loads(t2.read_text())
        assert timing["workers"] == 2 and timing["rows"]
