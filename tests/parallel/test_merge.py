"""Merge determinism: sharded output must equal the sequential run."""

from repro.chaos.plan import sample_sim_campaign
from repro.chaos.runner import run_sim_campaign, sim_target
from repro.net.fuzz import fuzz_quorum_register
from repro.parallel import (
    RunRecord,
    WorkerPool,
    make_shards,
    merge_campaign_runs,
    merge_counters,
    merge_fuzz_results,
    merge_net_reports,
)
from repro.sim import ops
from repro.sim.registers import Register
from repro.verify import InvariantProperty
from repro.verify.fuzz import fuzz

X = Register("mrg", 0)


def _factories():
    def prog(pid):
        v = yield ops.read(X)
        yield ops.write(X, v + 1)

    return {0: prog, 1: prog}


def _properties():
    return [
        InvariantProperty(
            lambda sb: sb.memory.peek(X) < 2, name="x<2", message="x hit 2"
        )
    ]


class TestFuzzMerge:
    def test_sharded_slices_merge_to_the_sequential_result(self):
        """The core contract: any partition reproduces the one-shot run."""
        sequential = fuzz(
            _factories(), _properties(), schedules=40, seed=0,
            stop_at_first_violation=False,
        )
        assert sequential.failures  # the property fires often; merge has work
        for workers in (1, 3, 7):
            parts = [
                fuzz(
                    _factories(), _properties(),
                    schedules=shard.count, first_index=shard.start, seed=0,
                    stop_at_first_violation=False,
                )
                for shard in make_shards(40, workers)
            ]
            merged = merge_fuzz_results(parts)
            assert merged == sequential, f"workers={workers}"

    def test_failures_sorted_by_run_index_even_out_of_order(self):
        parts = [
            fuzz(
                _factories(), _properties(),
                schedules=shard.count, first_index=shard.start, seed=0,
                stop_at_first_violation=False,
            )
            for shard in make_shards(40, 4)
        ]
        merged = merge_fuzz_results(list(reversed(parts)))
        indices = [failure.run_index for failure in merged.failures]
        assert indices == sorted(indices)

    def test_seed_keys_use_global_indices(self):
        part = fuzz(
            _factories(), _properties(),
            schedules=10, first_index=30, seed=9,
            stop_at_first_violation=False,
        )
        assert all(f.seed_key == f"9:{f.run_index}" for f in part.failures)
        assert all(30 <= f.run_index < 40 for f in part.failures)


class TestNetMerge:
    def test_sharded_net_fuzz_merges_to_sequential(self):
        sequential = fuzz_quorum_register(schedules=6, seed=5)
        parts = [
            fuzz_quorum_register(
                schedules=shard.count, seed=5, first_index=shard.start
            )
            for shard in make_shards(6, 3)
        ]
        merged = merge_net_reports(parts)
        assert merged.schedules == sequential.schedules
        assert merged.outcomes == sequential.outcomes
        assert merged.by_plan() == sequential.by_plan()

    def test_empty_parts(self):
        merged = merge_net_reports([])
        assert merged.schedules == 0 and merged.outcomes == []


class TestCampaignMerge:
    def test_first_failure_rule_truncates_later_records(self):
        """Runs past the globally-first failure never reach the report."""
        campaign = sample_sim_campaign("mrg", pids=(0, 1, 2), windows=2)
        fail_at_4 = RunRecord(index=4, steps=11, outcome="failing-outcome")
        parts = [
            [RunRecord(0, 10), RunRecord(1, 10), fail_at_4],
            [RunRecord(2, 10), RunRecord(3, 10)],
            # A later shard also "failed" — sequential would never see it.
            [RunRecord(5, 10, outcome="later-failure"), RunRecord(6, 10)],
        ]
        report = merge_campaign_runs(campaign, parts)
        assert report.failing == "failing-outcome"
        assert report.schedules_run == 5
        assert report.total_steps == 51

    def test_all_clean_counts_everything(self):
        campaign = sample_sim_campaign("mrg", pids=(0, 1, 2), windows=2)
        parts = [[RunRecord(i, 7) for i in range(5)]]
        report = merge_campaign_runs(campaign, parts)
        assert report.ok
        assert report.schedules_run == 5 and report.total_steps == 35

    def test_sim_campaign_workers_match_sequential(self):
        """End to end: sequential loop vs real spawn workers, same report."""
        target = sim_target("fischer_n3")
        campaign = sample_sim_campaign("demo-a-0", pids=target.pids, windows=6)
        sequential = run_sim_campaign(target, campaign, schedules=8)
        assert not sequential.ok  # this seed is known to find a violation
        with WorkerPool(2) as pool:
            parallel = run_sim_campaign(
                target, campaign, schedules=8, pool=pool
            )
        assert parallel.schedules_run == sequential.schedules_run
        assert parallel.total_steps == sequential.total_steps
        assert parallel.failing == sequential.failing
        assert parallel.shard_timing  # telemetry present, results untouched


class TestCounters:
    def test_merge_counters_sums_keywise(self):
        merged = merge_counters([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert merged == {"a": 1, "b": 5, "c": 4}
