"""Module-level shard workers for the pool tests.

The spawn pool pickles workers *by reference*, so anything executed with
``workers > 1`` must live at module level in an importable module —
exactly the discipline :mod:`repro.parallel.pool` documents.  Keeping
them here (not inline in the test functions) is what lets the tests
exercise the real multi-process path.
"""

from __future__ import annotations


def square_worker(shard, payload):
    """Deterministic per-item values keyed by global index."""
    return [index * index for index in range(shard.start, shard.stop)]


def echo_subseeds_worker(shard, payload):
    return list(shard.sub_seeds)


def boom_worker(shard, payload):
    """Raise on the shard whose index matches the payload."""
    if shard.index == payload:
        raise RuntimeError("worker exploded on purpose")
    return shard.count
